//! On-disk snapshot format for rolling restarts.
//!
//! A snapshot file is a header followed by one length-prefixed,
//! CRC-guarded record per resident session:
//!
//! ```text
//! [magic: 8 bytes "SMOSNAP1"] [version: u16 LE] [count: u64 LE]
//! [header crc32: u32 LE, over the 18 bytes above]
//! then, count times:
//!   [len: u32 LE] [payload: len bytes] [crc32(payload): u32 LE]
//! ```
//!
//! Each payload is one session's full exported state — the same
//! counters / server queue / link pipe / playout ring / source position
//! the PR 9 migration path moves between shards, so a restore is
//! invisible to the byte ledger exactly as a migration is.
//!
//! Torn-write detection is layered: the header count catches files cut
//! at a record boundary, the record length prefix catches files cut
//! mid-record, and the per-record CRC catches bit rot and flips inside
//! a record that survived the length check. [`read_snapshot`] is total
//! — any byte sequence either decodes into sessions or returns a typed
//! [`SnapshotError`], never a panic — and validates the paper's
//! conservation identity (`offered = resolved + in_flight`) on every
//! decoded session before handing it back.

use std::fmt;

use crate::session::LiveSession;

/// Leading magic of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SMOSNAP1";

/// Snapshot format version written by this build.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Fixed header size: magic + version + count + header CRC.
pub const SNAPSHOT_HEADER: usize = 8 + 2 + 8 + 4;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
/// Hand-rolled bitwise form: snapshots are cold-path I/O, so table-free
/// simplicity beats throughput here.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Typed snapshot decoding failure. None of these panic; a daemon
/// asked to `--restore` a file that yields any of them refuses to
/// start rather than resurrect a torn session set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The header declares a version this build does not speak.
    BadVersion(u16),
    /// The header CRC does not match its fields.
    BadHeaderCrc {
        /// CRC recorded in the file.
        stored: u32,
        /// CRC of the header bytes actually read.
        computed: u32,
    },
    /// The bytes end mid-structure (torn write).
    Truncated,
    /// A record's CRC does not match its payload.
    BadRecordCrc {
        /// Zero-based record index.
        index: u64,
        /// CRC recorded in the file.
        stored: u32,
        /// CRC of the payload bytes actually read.
        computed: u32,
    },
    /// Bytes remain after the last declared record.
    TrailingBytes(usize),
    /// A session record names an unknown drop-policy code.
    BadPolicy(u8),
    /// A session record names an unknown arrival-source tag.
    BadSourceTag(u8),
    /// A session record violates a structural invariant (the named
    /// one); the payload passed its CRC but cannot describe a live
    /// session.
    Malformed(&'static str),
    /// Restore refused: no shard can book the named rate for a
    /// restored session. The snapshot is valid but the restoring
    /// daemon is sized smaller than the one that wrote it.
    Capacity {
        /// Reserved rate of the session that did not fit.
        rate: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadHeaderCrc { stored, computed } => write!(
                f,
                "snapshot header CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::Truncated => write!(f, "snapshot truncated mid-structure (torn write)"),
            SnapshotError::BadRecordCrc {
                index,
                stored,
                computed,
            } => write!(
                f,
                "session record {index} CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the last session record")
            }
            SnapshotError::BadPolicy(p) => write!(f, "unknown drop-policy code {p}"),
            SnapshotError::BadSourceTag(t) => write!(f, "unknown arrival-source tag {t}"),
            SnapshotError::Malformed(what) => write!(f, "malformed session record: {what}"),
            SnapshotError::Capacity { rate } => {
                write!(f, "no shard can book rate {rate} for a restored session")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Bounds-checked little-endian reader used by the session decoder.
pub(crate) struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated)?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// A 0/1 byte decoded as a flag; anything else is malformed.
    pub(crate) fn flag(&mut self, what: &'static str) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed(what)),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn finish(self) -> Result<(), SnapshotError> {
        let extra = self.buf.len() - self.pos;
        if extra == 0 {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes(extra))
        }
    }
}

/// Accumulates session records and assembles the final file bytes.
///
/// Each shard worker fills its own writer between slots (the sessions
/// it owns never move while it holds them), the daemon merges the
/// per-shard writers, and [`finish`](Self::finish) prepends the header.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    records: Vec<u8>,
    count: u64,
    scratch: Vec<u8>,
}

impl SnapshotWriter {
    /// New empty writer.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Serializes one session as a length-prefixed, CRC-guarded record.
    pub fn add(&mut self, session: &LiveSession) {
        self.scratch.clear();
        session.encode_state(&mut self.scratch);
        let len = u32::try_from(self.scratch.len()).expect("session record fits u32");
        self.records.extend_from_slice(&len.to_le_bytes());
        self.records.extend_from_slice(&self.scratch);
        self.records
            .extend_from_slice(&crc32(&self.scratch).to_le_bytes());
        self.count += 1;
    }

    /// Sessions recorded so far.
    pub fn sessions(&self) -> u64 {
        self.count
    }

    /// Appends every record of `other` after this writer's records.
    pub fn merge(&mut self, other: SnapshotWriter) {
        self.records.extend_from_slice(&other.records);
        self.count += other.count;
    }

    /// Assembles the complete snapshot file: header, then records.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SNAPSHOT_HEADER + self.records.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(&self.records);
        out
    }
}

/// Decodes a complete snapshot file into its sessions.
///
/// Total over arbitrary bytes: truncation at any offset, bit flips,
/// and unknown versions all map to a typed [`SnapshotError`]. Callers
/// own file I/O; this operates on the bytes alone.
pub fn read_snapshot(bytes: &[u8]) -> Result<Vec<LiveSession>, SnapshotError> {
    if bytes.len() < SNAPSHOT_HEADER {
        // Distinguish "not a snapshot at all" from "torn header" so a
        // wrong-file mistake reads as such; an empty file carries no
        // evidence it was ever a snapshot.
        if bytes.is_empty() || !bytes.starts_with(&SNAPSHOT_MAGIC[..bytes.len().min(8)]) {
            return Err(SnapshotError::BadMagic);
        }
        return Err(SnapshotError::Truncated);
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    let count = u64::from_le_bytes(bytes[10..18].try_into().expect("8 header bytes"));
    let stored = u32::from_le_bytes(bytes[18..22].try_into().expect("4 crc bytes"));
    let computed = crc32(&bytes[..18]);
    if stored != computed {
        return Err(SnapshotError::BadHeaderCrc { stored, computed });
    }
    // CRC-valid header: version and count are now trustworthy.
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let mut rest = &bytes[SNAPSHOT_HEADER..];
    // Capacity guard: trust `count` only as far as the bytes can back.
    let cap = (count as usize).min(rest.len() / 8 + 1);
    let mut sessions = Vec::with_capacity(cap);
    for index in 0..count {
        if rest.len() < 4 {
            return Err(SnapshotError::Truncated);
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 length bytes")) as usize;
        if rest.len() < 4 + len + 4 {
            return Err(SnapshotError::Truncated);
        }
        let payload = &rest[4..4 + len];
        let stored = u32::from_le_bytes(rest[4 + len..4 + len + 4].try_into().expect("4 crc bytes"));
        let computed = crc32(payload);
        if stored != computed {
            return Err(SnapshotError::BadRecordCrc {
                index,
                stored,
                computed,
            });
        }
        sessions.push(LiveSession::decode_state(payload)?);
        rest = &rest[4 + len + 4..];
    }
    if !rest.is_empty() {
        return Err(SnapshotError::TrailingBytes(rest.len()));
    }
    Ok(sessions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let bytes = SnapshotWriter::new().finish();
        assert_eq!(bytes.len(), SNAPSHOT_HEADER);
        assert!(read_snapshot(&bytes).expect("valid").is_empty());
    }

    #[test]
    fn header_mangling_is_typed() {
        let good = SnapshotWriter::new().finish();
        assert_eq!(read_snapshot(&[]).unwrap_err(), SnapshotError::BadMagic);
        assert_eq!(
            read_snapshot(b"not a snapshot file").unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            read_snapshot(&good[..SNAPSHOT_HEADER - 1]).unwrap_err(),
            SnapshotError::Truncated
        );
        let mut version = good.clone();
        version[8] = 9;
        // A flipped version byte invalidates the header CRC first.
        assert!(matches!(
            read_snapshot(&version),
            Err(SnapshotError::BadHeaderCrc { .. })
        ));
        let mut count = good.clone();
        count[10] = 1;
        assert!(matches!(
            read_snapshot(&count),
            Err(SnapshotError::BadHeaderCrc { .. })
        ));
        let mut trailing = good;
        trailing.push(0);
        assert_eq!(
            read_snapshot(&trailing).unwrap_err(),
            SnapshotError::TrailingBytes(1)
        );
    }
}
