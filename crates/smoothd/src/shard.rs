//! A shard: the unit of parallelism in the daemon.
//!
//! Each shard owns a disjoint set of sessions, an
//! [`AdmissionController`] guarding its share of link capacity
//! (`B = R·D` per session, Theorem 3.5), and all the scratch buffers
//! the per-slot loop needs. [`Shard::process_slot`] is allocation-free
//! in the steady state: arrivals, demands, grants, server steps, and
//! deliveries all reuse shard-owned storage, and sessions' playout
//! clients are fixed rings ([`crate::PlayoutRing`]). Only churn
//! (admit / retire) touches the allocator.
//!
//! Scheduling across sessions is max-min fair with byte granularity —
//! the same discipline as the batch mux's `RoundRobin`, reimplemented
//! over parallel index arrays so the hot loop borrows no session state.

use std::collections::HashMap;

use rts_core::tradeoff::SmoothingParams;
use rts_core::{DropPolicy, GreedyByteValue, HeadDrop, SentChunk, ServerStep, TailDrop};
use rts_mux::{AdmissionController, AdmissionError};
use rts_obs::{LogHistogram, RejectReason};
use rts_stream::{Bytes, Slice, Time, Weight};

use crate::frame::{AdmitRequest, WirePolicy};
use crate::session::{ArrivalSource, LiveSession, RetireCause, SessionCounters, SessionId};

/// Cumulative per-shard aggregates.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Slots processed.
    pub slots: u64,
    /// Slices played across all sessions.
    pub played_slices: u64,
    /// Bytes put on the shard link.
    pub sent_bytes: Bytes,
    /// Largest per-slot byte total ever sent (must stay <= link rate).
    pub max_slot_sent: Bytes,
    /// Most sessions ever resident at once.
    pub peak_sessions: usize,
    /// Per-slot wall-clock latency in nanoseconds (recorded by the
    /// worker loop, not by [`Shard::process_slot`] itself, so the hot
    /// path never grows histogram buckets).
    pub latency: LogHistogram,
}

/// Record of one session leaving a shard.
#[derive(Debug, Clone, Copy)]
pub struct Retirement {
    /// The session that left.
    pub session: SessionId,
    /// Shard it lived on.
    pub shard: u32,
    /// Shard slot at which it left.
    pub slot: Time,
    /// Why it left.
    pub cause: RetireCause,
    /// Link rate it had reserved (released at retirement).
    pub rate: Bytes,
    /// Its final, conserved ledger.
    pub counters: SessionCounters,
}

/// Max-min fair byte allocation, equal-share floors then byte-by-byte
/// from a rotating cursor. `out[i] <= pending[i]` always, and
/// `sum(out) <= capacity`.
fn fair_grants(
    pending: &[Bytes],
    capacity: Bytes,
    cursor: &mut usize,
    active: &mut Vec<usize>,
    out: &mut Vec<Bytes>,
) {
    out.clear();
    out.resize(pending.len(), 0);
    active.clear();
    active.extend((0..pending.len()).filter(|&i| pending[i] > 0));
    let mut remaining = capacity;
    loop {
        if active.is_empty() || remaining == 0 {
            return;
        }
        let share = remaining / active.len() as Bytes;
        if share == 0 {
            break;
        }
        let mut kept = 0;
        for k in 0..active.len() {
            let idx = active[k];
            let take = share.min(pending[idx] - out[idx]);
            out[idx] += take;
            remaining -= take;
            if out[idx] < pending[idx] {
                active[kept] = idx;
                kept += 1;
            }
        }
        active.truncate(kept);
    }
    // share == 0 here, so remaining < active.len(): one extra byte for
    // the first `remaining` unsatisfied sessions after the cursor.
    debug_assert!((remaining as usize) < active.len());
    let n = active.len();
    let start = *cursor % n;
    for j in 0..remaining as usize {
        out[active[(start + j) % n]] += 1;
    }
    *cursor = cursor.wrapping_add(remaining as usize);
}

/// A set of sessions sharing one link, stepped together.
#[derive(Debug)]
pub struct Shard {
    id: u32,
    admission: AdmissionController,
    sessions: Vec<LiveSession>,
    index: HashMap<SessionId, usize>,
    now: Time,
    cursor: usize,
    stats: ShardStats,
    retired_counters: SessionCounters,
    retirements: Vec<Retirement>,
    // Scratch reused every slot; never shrinks, so the steady state
    // allocates nothing.
    arrivals: Vec<Slice>,
    pending: Vec<Bytes>,
    grants: Vec<Bytes>,
    active: Vec<usize>,
    sstep: ServerStep,
    delivered: Vec<SentChunk>,
}

pub(crate) fn policy_box(policy: WirePolicy) -> Box<dyn DropPolicy + Send> {
    match policy {
        WirePolicy::Tail => Box::new(TailDrop::new()),
        WirePolicy::Head => Box::new(HeadDrop::new()),
        WirePolicy::Greedy => Box::new(GreedyByteValue::new()),
    }
}

fn reject_of(err: AdmissionError) -> RejectReason {
    match err {
        AdmissionError::ZeroRate => RejectReason::ZeroRate,
        AdmissionError::InfeasibleTradeoff { .. } => RejectReason::Infeasible,
        AdmissionError::InsufficientCapacity { .. } => RejectReason::Capacity,
    }
}

impl Shard {
    /// A shard guarding `link_rate` bytes per slot, overbooked by
    /// `overbook.0 / overbook.1`.
    pub fn new(id: u32, link_rate: Bytes, overbook: (u64, u64)) -> Self {
        Shard {
            id,
            admission: AdmissionController::with_overbooking(link_rate, overbook.0, overbook.1),
            sessions: Vec::new(),
            index: HashMap::new(),
            now: 0,
            cursor: 0,
            stats: ShardStats::default(),
            retired_counters: SessionCounters::default(),
            retirements: Vec::new(),
            arrivals: Vec::new(),
            pending: Vec::new(),
            grants: Vec::new(),
            active: Vec::new(),
            sstep: ServerStep::default(),
            delivered: Vec::new(),
        }
    }

    /// Shard id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Shard slot counter.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Resident session count.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Cumulative aggregates.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Mutable aggregates (the worker loop records slot latency here).
    pub fn stats_mut(&mut self) -> &mut ShardStats {
        &mut self.stats
    }

    /// The shard's admission state.
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Builds the smoothing parameters an [`AdmitRequest`] asks for.
    pub fn params_of(req: &AdmitRequest) -> Result<SmoothingParams, RejectReason> {
        if req.rate == 0 {
            return Err(RejectReason::ZeroRate);
        }
        Ok(if req.buffer == 0 {
            SmoothingParams::balanced_from_rate_delay(req.rate, req.delay, req.link_delay)
        } else {
            SmoothingParams {
                buffer: req.buffer,
                rate: req.rate,
                delay: req.delay,
                link_delay: req.link_delay,
            }
        })
    }

    /// Admits a session described by an ingest request.
    pub fn admit(&mut self, id: SessionId, req: &AdmitRequest) -> Result<(), RejectReason> {
        let source = if req.per_slot == 0 {
            ArrivalSource::external()
        } else {
            ArrivalSource::cbr(
                req.per_slot as Bytes,
                req.slice_size.max(1) as Bytes,
                req.weight.max(1),
                (req.lifetime > 0).then_some(req.lifetime),
            )
        };
        self.admit_with_source(id, req, source)
    }

    /// Admits a session with an explicit source (trace replay).
    pub fn admit_with_source(
        &mut self,
        id: SessionId,
        req: &AdmitRequest,
        source: ArrivalSource,
    ) -> Result<(), RejectReason> {
        debug_assert!(!self.index.contains_key(&id), "session ids are unique");
        let params = Self::params_of(req)?;
        self.admission.admit(&params).map_err(reject_of)?;
        let session = LiveSession::new(
            id,
            params,
            req.weight.max(1),
            policy_box(req.policy),
            source,
        );
        self.index.insert(id, self.sessions.len());
        self.sessions.push(session);
        self.stats.peak_sessions = self.stats.peak_sessions.max(self.sessions.len());
        Ok(())
    }

    /// Feeds slices to an externally-sourced session.
    pub fn inject(
        &mut self,
        session: SessionId,
        slices: &[(Bytes, Weight)],
    ) -> Result<(), RejectReason> {
        let idx = *self
            .index
            .get(&session)
            .ok_or(RejectReason::UnknownSession)?;
        if self.sessions[idx].push_slices(slices) {
            Ok(())
        } else {
            // CBR or already-drained sessions cannot be fed.
            Err(RejectReason::Protocol)
        }
    }

    /// Requests a graceful drain; the session retires once empty.
    pub fn drain(&mut self, session: SessionId) -> Result<(), RejectReason> {
        let idx = *self
            .index
            .get(&session)
            .ok_or(RejectReason::UnknownSession)?;
        self.sessions[idx].drain();
        Ok(())
    }

    /// Drains every resident session.
    pub fn drain_all(&mut self) {
        for s in &mut self.sessions {
            s.drain();
        }
    }

    /// Evicts a session immediately, discarding its in-flight bytes.
    pub fn evict(&mut self, session: SessionId) -> Result<(), RejectReason> {
        let idx = *self
            .index
            .get(&session)
            .ok_or(RejectReason::UnknownSession)?;
        let s = self.remove_at(idx);
        let rate = s.rate();
        let params = *s.params();
        self.admission.release(&params);
        let counters = s.evict();
        self.retired_counters.add(&counters);
        self.retirements.push(Retirement {
            session,
            shard: self.id,
            slot: self.now,
            cause: RetireCause::Evicted,
            rate,
            counters,
        });
        Ok(())
    }

    /// Evicts everything (abandoning shutdown path); ledgers stay
    /// conserved because eviction charges the live pools.
    pub fn evict_all(&mut self) {
        while let Some(s) = self.sessions.last() {
            let id = s.id();
            let _ = self.evict(id);
        }
    }

    fn remove_at(&mut self, idx: usize) -> LiveSession {
        let s = self.sessions.swap_remove(idx);
        self.index.remove(&s.id());
        if idx < self.sessions.len() {
            let moved = self.sessions[idx].id();
            self.index.insert(moved, idx);
        }
        s
    }

    /// Removes a session for migration to another shard, releasing its
    /// admission reservation here. Unlike [`Shard::evict`] this charges
    /// nothing: the session leaves with its ring, ledger, and local
    /// clock intact, so byte conservation is the importer's to keep.
    pub fn export(&mut self, session: SessionId) -> Result<LiveSession, RejectReason> {
        let idx = *self
            .index
            .get(&session)
            .ok_or(RejectReason::UnknownSession)?;
        let s = self.remove_at(idx);
        self.admission.release(s.params());
        Ok(s)
    }

    /// Exports some resident session, preferring one that is not
    /// already draining (a draining session retires soon anyway, so
    /// moving it buys nothing). Returns `None` on an empty shard.
    pub fn export_any(&mut self) -> Option<LiveSession> {
        let id = self
            .sessions
            .iter()
            .rev()
            .find(|s| !s.is_draining())
            .or(self.sessions.last())?
            .id();
        self.export(id).ok()
    }

    /// Accepts a migrated session, re-reserving its rate with this
    /// shard's admission controller. On a capacity conflict the
    /// session is handed back untouched so the caller can return it
    /// whence it came.
    // The large Err IS the recovery path: the refused session travels
    // back to the donor by value, so boxing would just add a hop.
    #[allow(clippy::result_large_err)]
    pub fn import(&mut self, session: LiveSession) -> Result<(), LiveSession> {
        if self.admission.admit(session.params()).is_err() {
            return Err(session);
        }
        let id = session.id();
        debug_assert!(!self.index.contains_key(&id), "session ids are unique");
        self.index.insert(id, self.sessions.len());
        self.sessions.push(session);
        self.stats.peak_sessions = self.stats.peak_sessions.max(self.sessions.len());
        Ok(())
    }

    /// Iterates the resident sessions without disturbing them — the
    /// non-destructive walk a snapshot takes between slots. Order is
    /// the internal storage order, which is stable while no churn
    /// command runs.
    pub fn iter_sessions(&self) -> impl Iterator<Item = &LiveSession> {
        self.sessions.iter()
    }

    /// Folds an already-retired ledger into this shard's totals. Only
    /// the migration fallback path uses this: a session that could not
    /// land anywhere is evicted in place, and its counters must still
    /// appear in exactly one shard's ledger.
    pub fn absorb_retired(&mut self, counters: &SessionCounters) {
        self.retired_counters.add(counters);
    }

    /// Advances every session by one slot: arrivals, max-min fair
    /// grants over the shard link, transmit/deliver/play, then the
    /// retirement sweep. Allocation-free while the session set is
    /// stable.
    pub fn process_slot(&mut self) {
        self.pending.clear();
        for s in &mut self.sessions {
            s.begin_slot(&mut self.arrivals);
            self.pending.push(s.demand());
        }
        fair_grants(
            &self.pending,
            self.admission.link_rate(),
            &mut self.cursor,
            &mut self.active,
            &mut self.grants,
        );
        let mut slot_sent: Bytes = 0;
        let mut slot_played: u64 = 0;
        for (i, s) in self.sessions.iter_mut().enumerate() {
            let delta = s.step(self.grants[i], &mut self.sstep, &mut self.delivered);
            slot_sent += delta.sent;
            slot_played += delta.played_slices;
        }
        debug_assert!(
            slot_sent <= self.admission.link_rate(),
            "shard link oversubscribed: sent {slot_sent} > rate {}",
            self.admission.link_rate()
        );
        self.stats.sent_bytes += slot_sent;
        self.stats.max_slot_sent = self.stats.max_slot_sent.max(slot_sent);
        self.stats.played_slices += slot_played;
        let mut i = 0;
        while i < self.sessions.len() {
            match self.sessions[i].retire_cause() {
                Some(cause) => {
                    let s = self.remove_at(i);
                    let params = *s.params();
                    self.admission.release(&params);
                    let counters = *s.counters();
                    debug_assert!(counters.conserved());
                    self.retired_counters.add(&counters);
                    self.retirements.push(Retirement {
                        session: s.id(),
                        shard: self.id,
                        slot: self.now,
                        cause,
                        rate: s.rate(),
                        counters,
                    });
                }
                None => i += 1,
            }
        }
        self.now += 1;
        self.stats.slots += 1;
    }

    /// Moves accumulated retirements into `out`.
    pub fn take_retirements(&mut self, out: &mut Vec<Retirement>) {
        out.append(&mut self.retirements);
    }

    /// True when retirements are waiting to be taken.
    pub fn has_retirements(&self) -> bool {
        !self.retirements.is_empty()
    }

    /// Combined ledger: retired sessions plus every live session.
    pub fn totals(&self) -> SessionCounters {
        let mut t = self.retired_counters;
        for s in &self.sessions {
            t.add(s.counters());
        }
        t
    }

    /// Bytes currently held across all live pools (server buffers,
    /// links, client rings).
    pub fn pool_bytes(&self) -> Bytes {
        self.sessions.iter().map(|s| s.in_flight_bytes()).sum()
    }

    /// Steps until every session has retired, up to `max_slots`.
    /// Returns `true` on full drain.
    pub fn run_until_drained(&mut self, max_slots: u64) -> bool {
        for _ in 0..max_slots {
            if self.sessions.is_empty() {
                return true;
            }
            self.process_slot();
        }
        self.sessions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cbr_request(rate: Bytes, delay: Time, lifetime: u64) -> AdmitRequest {
        AdmitRequest {
            rate,
            delay,
            link_delay: 1,
            buffer: 0,
            weight: 1,
            policy: WirePolicy::Tail,
            per_slot: rate as u32,
            slice_size: 1,
            lifetime,
        }
    }

    #[test]
    fn fair_grants_respects_pending_and_capacity() {
        let mut cursor = 0;
        let mut active = Vec::new();
        let mut out = Vec::new();
        fair_grants(&[5, 1, 3], 7, &mut cursor, &mut active, &mut out);
        assert_eq!(out.iter().sum::<Bytes>(), 7);
        assert!(out.iter().zip([5, 1, 3]).all(|(g, p)| *g <= p));
        // Capacity above total demand grants everything.
        fair_grants(&[5, 1, 3], 100, &mut cursor, &mut active, &mut out);
        assert_eq!(out, vec![5, 1, 3]);
        // Zero capacity grants nothing.
        fair_grants(&[5, 1, 3], 0, &mut cursor, &mut active, &mut out);
        assert_eq!(out, vec![0, 0, 0]);
    }

    #[test]
    fn admits_until_capacity_then_rejects() {
        let mut shard = Shard::new(0, 10, (1, 1));
        for i in 0..5 {
            shard.admit(i, &cbr_request(2, 2, 0)).expect("fits");
        }
        assert_eq!(
            shard.admit(99, &cbr_request(2, 2, 0)),
            Err(RejectReason::Capacity)
        );
        assert_eq!(shard.admission().committed(), 10);
        // Retiring a session frees its reservation.
        shard.drain(0).unwrap();
        assert!(!shard.run_until_drained(64)); // others are unbounded
        assert_eq!(shard.admission().committed(), 8);
        shard.admit(99, &cbr_request(2, 2, 0)).expect("fits again");
    }

    #[test]
    fn infeasible_and_zero_rate_rejections() {
        let mut shard = Shard::new(0, 10, (1, 1));
        let mut req = cbr_request(2, 2, 0);
        req.buffer = 100; // B > R*D = 4
        assert_eq!(shard.admit(1, &req), Err(RejectReason::Infeasible));
        let mut req = cbr_request(0, 2, 0);
        req.per_slot = 0;
        assert_eq!(shard.admit(2, &req), Err(RejectReason::ZeroRate));
        assert_eq!(shard.sessions(), 0);
    }

    #[test]
    fn churn_preserves_byte_conservation() {
        let mut shard = Shard::new(0, 16, (1, 1));
        for i in 0..4 {
            shard.admit(i, &cbr_request(4, 3, 0)).unwrap();
        }
        for _ in 0..10 {
            shard.process_slot();
        }
        shard.evict(1).unwrap();
        shard.drain(2).unwrap();
        for _ in 0..10 {
            shard.process_slot();
        }
        let totals = shard.totals();
        let pool = shard.pool_bytes();
        assert_eq!(
            totals.offered_bytes,
            totals.resolved_bytes() + pool,
            "offered must equal resolved plus in-flight"
        );
        // Finish everything; the ledger alone must then balance.
        shard.drain_all();
        assert!(shard.run_until_drained(128));
        assert!(shard.totals().conserved());
        assert_eq!(shard.pool_bytes(), 0);
        assert_eq!(shard.admission().committed(), 0);
    }

    #[test]
    fn link_never_oversubscribed_under_overload() {
        // Overbook 2x: 8 sessions of rate 2 on a rate-8 link. The
        // grant loop must still cap per-slot sends at the physical 8.
        let mut shard = Shard::new(0, 8, (2, 1));
        for i in 0..8 {
            shard.admit(i, &cbr_request(2, 4, 20)).unwrap();
        }
        for _ in 0..40 {
            shard.process_slot();
        }
        assert!(shard.stats().max_slot_sent <= 8);
        assert!(shard.run_until_drained(64));
        let totals = shard.totals();
        assert!(totals.conserved());
        // Overload must have cost something (drops), not silently
        // stretched the link.
        assert!(
            totals.server_dropped_bytes + totals.client_dropped_bytes > 0,
            "2x overbooking at full offered load must shed bytes"
        );
    }

    #[test]
    fn retirements_report_cause_and_conserved_ledgers() {
        let mut shard = Shard::new(0, 8, (1, 1));
        shard.admit(10, &cbr_request(2, 2, 5)).unwrap(); // completes
        shard.admit(11, &cbr_request(2, 2, 0)).unwrap(); // drained
        shard.admit(12, &cbr_request(2, 2, 0)).unwrap(); // evicted
        for _ in 0..4 {
            shard.process_slot();
        }
        shard.evict(12).unwrap();
        shard.drain(11).unwrap();
        assert!(shard.run_until_drained(64));
        let mut retirements = Vec::new();
        shard.take_retirements(&mut retirements);
        assert_eq!(retirements.len(), 3);
        for r in &retirements {
            assert!(r.counters.conserved(), "session {} leaks bytes", r.session);
        }
        let cause_of = |id| retirements.iter().find(|r| r.session == id).unwrap().cause;
        assert_eq!(cause_of(10), RetireCause::Completed);
        assert_eq!(cause_of(11), RetireCause::Drained);
        assert_eq!(cause_of(12), RetireCause::Evicted);
    }
}
