//! Length-prefixed ingest frames for the smoothing daemon.
//!
//! The wire format is deliberately minimal: every frame is
//!
//! ```text
//! [len: u32 LE] [kind: u8] [payload: len-1 bytes]
//! ```
//!
//! where `len` counts the kind byte plus the payload and is capped at
//! [`MAX_FRAME`]. All multi-byte integers are little-endian. The codec
//! is total: [`decode_frame`] never panics on arbitrary bytes — every
//! malformed input maps to a typed [`FrameError`], and incomplete input
//! maps to [`FrameError::Incomplete`] with the number of buffered bytes
//! that would make progress possible (so stream readers know when to
//! ask the socket for more).
//!
//! A connection opens with [`Frame::Hello`] (carrying [`MAGIC`] and a
//! protocol version) and is answered with [`Frame::Welcome`]. After
//! that the client admits sessions, feeds externally-sourced sessions
//! with [`Frame::Data`], and retires them with [`Frame::Drain`] /
//! [`Frame::Evict`]. The daemon answers admissions with
//! [`Frame::Admitted`] or [`Frame::Rejected`] (a typed
//! [`RejectReason`]).

use std::fmt;

use rts_obs::RejectReason;
use rts_stream::{Bytes, Time, Weight};

/// Magic number carried by [`Frame::Hello`]: the ASCII bytes `SMO1`
/// read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"SMO1");

/// Wire protocol version spoken by this build.
pub const PROTOCOL_VERSION: u16 = 1;

/// Maximum frame body (kind byte + payload) in bytes. Anything larger
/// is rejected before buffering, bounding per-connection memory.
pub const MAX_FRAME: usize = 4096;

const K_HELLO: u8 = 0x01;
const K_ADMIT: u8 = 0x02;
const K_DATA: u8 = 0x03;
const K_DRAIN: u8 = 0x04;
const K_EVICT: u8 = 0x05;
const K_STATS: u8 = 0x06;
const K_GOODBYE: u8 = 0x07;
const K_STATS_DETAIL: u8 = 0x08;
const K_ADMIT_BATCH: u8 = 0x09;
const K_SNAPSHOT: u8 = 0x0a;
const K_WELCOME: u8 = 0x81;
const K_ADMITTED: u8 = 0x82;
const K_REJECTED: u8 = 0x83;
const K_STATS_REPLY: u8 = 0x84;
const K_BYE: u8 = 0x85;
const K_STATS_DETAIL_REPLY: u8 = 0x86;
const K_ADMITTED_BATCH: u8 = 0x87;
const K_SNAPSHOT_CHUNK: u8 = 0x88;
const K_SNAPSHOT_ACK: u8 = 0x89;

/// Drop policy selector on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WirePolicy {
    /// Tail-drop: reject the newest arrival.
    Tail,
    /// Head-drop: drop the oldest buffered slice.
    Head,
    /// Greedy byte-value drop (Section 4 of the paper).
    Greedy,
}

impl WirePolicy {
    /// Wire code for this policy.
    pub fn code(self) -> u8 {
        match self {
            WirePolicy::Tail => 0,
            WirePolicy::Head => 1,
            WirePolicy::Greedy => 2,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<WirePolicy> {
        match code {
            0 => Some(WirePolicy::Tail),
            1 => Some(WirePolicy::Head),
            2 => Some(WirePolicy::Greedy),
            _ => None,
        }
    }
}

/// Everything the daemon needs to admit one session.
///
/// `buffer == 0` asks for the balanced `B = R·D` configuration
/// (Equation 1); a nonzero buffer is checked against the tradeoff and
/// rejected as infeasible when `B > R·D`. `per_slot == 0` declares an
/// externally-fed session (slices arrive via [`Frame::Data`]); a
/// nonzero value declares a constant-bitrate source generated inside
/// the daemon, with `lifetime == 0` meaning "until drained".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdmitRequest {
    /// Reserved link rate `R` in bytes per slot.
    pub rate: Bytes,
    /// Smoothing delay `D` in slots.
    pub delay: Time,
    /// Link propagation delay `P` in slots.
    pub link_delay: Time,
    /// Buffer space `B`; 0 selects the balanced `R·D`.
    pub buffer: Bytes,
    /// Scheduling weight of the session.
    pub weight: Weight,
    /// Server drop policy.
    pub policy: WirePolicy,
    /// CBR arrivals per slot (bytes); 0 = externally fed.
    pub per_slot: u32,
    /// Size of each generated slice for CBR sources.
    pub slice_size: u32,
    /// CBR lifetime in slots; 0 = unbounded (drain to stop).
    pub lifetime: u64,
}

/// Aggregate counters returned by [`Frame::StatsReply`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct StatsSnapshot {
    /// Live sessions across all shards.
    pub sessions: u64,
    /// Cumulative slices played to clients.
    pub slices_played: u64,
    /// Maximum slot count across shards (daemon logical time).
    pub slots: u64,
    /// Cumulative sessions retired (completed, drained, or evicted).
    pub retired: u64,
}

/// Fixed quantile digest of one latency histogram, as carried on the
/// wire (40 bytes: five `u64`s). Quantiles follow the telemetry
/// exposition's summary set (p50/p90/p99); an empty histogram is all
/// zeros with `count == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Median (ns).
    pub p50: u64,
    /// 90th percentile (ns).
    pub p90: u64,
    /// 99th percentile (ns).
    pub p99: u64,
    /// Exact maximum (ns).
    pub max: u64,
}

impl HistSummary {
    /// Digest a full histogram down to the wire quantile set.
    pub fn from_histogram(h: &rts_obs::LogHistogram) -> HistSummary {
        HistSummary {
            count: h.count(),
            p50: h.quantile(0.5),
            p90: h.quantile(0.9),
            p99: h.quantile(0.99),
            max: h.max(),
        }
    }
}

/// Per-shard row of a [`Frame::StatsDetailReply`] (100 bytes on the
/// wire).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ShardRow {
    /// Shard index.
    pub shard: u32,
    /// Resident sessions.
    pub sessions: u64,
    /// Slots stepped since start.
    pub slots: u64,
    /// Slices delivered to playout since start.
    pub played: u64,
    /// Bytes sent over the shard link since start.
    pub sent_bytes: u64,
    /// Slots that finished past their deadline.
    pub deadline_misses: u64,
    /// Slots whose work alone exceeded the period.
    pub slot_overruns: u64,
    /// Rebalancer cost-over-mean gauge (milli-units; 1000 = mean).
    pub imbalance_milli: u64,
    /// `process_slot` latency digest (ns).
    pub latency: HistSummary,
}

/// Detailed telemetry returned by [`Frame::StatsDetailReply`]:
/// daemon-wide counters plus one [`ShardRow`] per shard.
///
/// `stages` digests the four self-profiling timers in
/// ingest-decode / admit / process / retire order (the
/// `rts_telemetry::STAGES` ordering); `rejects` counts ingest
/// rejections in [`RejectReason::ALL`] order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsDetail {
    /// Sessions fully retired and harvested.
    pub retired: u64,
    /// Sessions migrated between shards by the rebalancer.
    pub migrations: u64,
    /// Donor shard of the most recent migration, or `u32::MAX` if no
    /// migration has happened yet.
    pub last_migration_from: u32,
    /// Receiver shard of the most recent migration, or `u32::MAX`.
    pub last_migration_to: u32,
    /// Per-reason reject counts, [`RejectReason::ALL`] order.
    pub rejects: [u64; 6],
    /// Cumulative bytes written by snapshots since start.
    pub snapshot_bytes: u64,
    /// Cumulative wall time spent taking snapshots (ns).
    pub snapshot_duration_ns: u64,
    /// Sessions restored from a snapshot at startup.
    pub restored_sessions: u64,
    /// Deadline lateness digest (ns), merged across shards.
    pub lateness: HistSummary,
    /// Stage timer digests: ingest-decode, admit, process, retire.
    pub stages: [HistSummary; 4],
    /// Per-shard rows, shard 0 first. At most
    /// [`MAX_STATS_SHARDS`] rows fit one frame; the daemon truncates
    /// (it never has that many shards on real hardware).
    pub shards: Vec<ShardRow>,
}

/// Most shard rows one [`Frame::StatsDetailReply`] can carry without
/// exceeding [`MAX_FRAME`]: `1 + 298 + 100·n ≤ 4096 ⇒ n ≤ 37`.
pub const MAX_STATS_SHARDS: usize = 37;

/// Most payload bytes one [`Frame::SnapshotChunk`] can carry:
/// `MAX_FRAME` minus the kind byte and the `u16` chunk length.
pub const MAX_SNAPSHOT_CHUNK: usize = MAX_FRAME - 3;

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client opening handshake (magic + version).
    Hello {
        /// Protocol version the client speaks.
        version: u16,
    },
    /// Admit a new session.
    Admit(AdmitRequest),
    /// Admit `count` identical sessions in one round trip (the batched
    /// admission fast path; answered by [`Frame::AdmittedBatch`] or
    /// [`Frame::Rejected`]).
    AdmitBatch {
        /// Number of sessions to admit (must be nonzero).
        count: u32,
        /// Parameters shared by every session in the batch.
        req: AdmitRequest,
    },
    /// Feed slices to an externally-sourced session.
    Data {
        /// Daemon-assigned session id.
        session: u64,
        /// `(size, weight)` per slice, in arrival order.
        slices: Vec<(Bytes, Weight)>,
    },
    /// Stop arrivals and let the pipeline empty gracefully.
    Drain {
        /// Session to drain.
        session: u64,
    },
    /// Remove a session immediately, discarding in-flight bytes.
    Evict {
        /// Session to evict.
        session: u64,
    },
    /// Request a [`Frame::StatsReply`].
    Stats,
    /// Request a [`Frame::StatsDetailReply`].
    StatsDetail,
    /// Ask the daemon to checkpoint every resident session. Answered
    /// by a run of [`Frame::SnapshotChunk`]s carrying the snapshot
    /// bytes, terminated by one [`Frame::SnapshotAck`].
    Snapshot,
    /// Client is closing the connection.
    Goodbye,
    /// Server handshake answer.
    Welcome {
        /// Protocol version the server speaks.
        version: u16,
    },
    /// Admission succeeded.
    Admitted {
        /// Assigned session id.
        session: u64,
        /// Shard the session landed on.
        shard: u32,
    },
    /// Batch admission succeeded: ids are `first_session ..
    /// first_session + count` (contiguous), spread across shards by
    /// measured cost.
    AdmittedBatch {
        /// First assigned session id.
        first_session: u64,
        /// Number of sessions admitted (may be less than requested
        /// when capacity ran out mid-batch).
        count: u32,
    },
    /// Admission (or another per-session request) was refused.
    Rejected {
        /// Session the rejection refers to (0 for admissions).
        session: u64,
        /// Why it was refused.
        reason: RejectReason,
    },
    /// Aggregate counters.
    StatsReply(StatsSnapshot),
    /// Detailed live telemetry (per-shard rows + stage digests).
    StatsDetailReply(Box<StatsDetail>),
    /// One slab of snapshot bytes, at most [`MAX_SNAPSHOT_CHUNK`] per
    /// frame; the snapshot file is the concatenation of every chunk's
    /// `data` in arrival order.
    SnapshotChunk {
        /// Raw snapshot bytes carried by this chunk.
        data: Vec<u8>,
    },
    /// Terminates a snapshot chunk run.
    SnapshotAck {
        /// Sessions captured in the snapshot.
        sessions: u64,
        /// Total snapshot size in bytes (sum of all chunk payloads).
        bytes: u64,
    },
    /// Server is closing the connection.
    Bye,
}

/// Typed decoding failure. Only [`FrameError::Incomplete`] is
/// recoverable by reading more bytes; everything else is a protocol
/// violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough buffered bytes yet; `need` is the total buffer length
    /// at which decoding can make progress.
    Incomplete {
        /// Total bytes the buffer must hold.
        need: usize,
    },
    /// Declared length of zero (a frame always has a kind byte).
    Empty,
    /// Declared length exceeds [`MAX_FRAME`].
    Oversized {
        /// Declared body length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
        /// Kind byte of the offending frame.
        kind: u8,
    },
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// Payload too short for the declared kind.
    Truncated {
        /// Kind whose payload was short.
        kind: u8,
    },
    /// Payload longer than the declared kind consumes.
    TrailingBytes {
        /// Kind with extra payload.
        kind: u8,
        /// Unconsumed byte count.
        extra: usize,
    },
    /// Hello carried the wrong magic number.
    BadMagic(u32),
    /// Unknown drop-policy code in an admit request.
    BadPolicy(u8),
    /// Unknown reject-reason code.
    BadReject(u8),
    /// A data frame declared a slice of zero bytes.
    ZeroSlice,
}

impl FrameError {
    /// True when reading more bytes can resolve the error.
    pub fn is_incomplete(&self) -> bool {
        matches!(self, FrameError::Incomplete { .. })
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Incomplete { need } => write!(f, "incomplete frame: need {need} bytes"),
            FrameError::Empty => write!(f, "zero-length frame"),
            FrameError::Oversized { len, max, kind } => {
                write!(f, "frame kind {kind:#04x} body of {len} bytes exceeds cap {max}")
            }
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::Truncated { kind } => {
                write!(f, "payload truncated for frame kind {kind:#04x}")
            }
            FrameError::TrailingBytes { kind, extra } => {
                write!(f, "{extra} trailing payload bytes after frame kind {kind:#04x}")
            }
            FrameError::BadMagic(m) => write!(f, "bad hello magic {m:#010x}"),
            FrameError::BadPolicy(p) => write!(f, "unknown policy code {p}"),
            FrameError::BadReject(r) => write!(f, "unknown reject-reason code {r}"),
            FrameError::ZeroSlice => write!(f, "data frame declares a zero-byte slice"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Bounds-checked little-endian reader over a payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    kind: u8,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], kind: u8) -> Self {
        Reader { buf, pos: 0, kind }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(FrameError::Truncated { kind: self.kind })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn finish(self) -> Result<(), FrameError> {
        let extra = self.buf.len() - self.pos;
        if extra == 0 {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes {
                kind: self.kind,
                extra,
            })
        }
    }
}

fn read_admit_request(r: &mut Reader<'_>) -> Result<AdmitRequest, FrameError> {
    let rate = r.u32()? as Bytes;
    let delay = r.u32()? as Time;
    let link_delay = r.u32()? as Time;
    let buffer = r.u32()? as Bytes;
    let weight = r.u32()? as Weight;
    let policy_code = r.u8()?;
    let policy = WirePolicy::from_code(policy_code).ok_or(FrameError::BadPolicy(policy_code))?;
    let per_slot = r.u32()?;
    let slice_size = r.u32()?;
    let lifetime = r.u64()?;
    Ok(AdmitRequest {
        rate,
        delay,
        link_delay,
        buffer,
        weight,
        policy,
        per_slot,
        slice_size,
        lifetime,
    })
}

fn write_admit_request(body: &mut Vec<u8>, req: &AdmitRequest) {
    body.extend_from_slice(&u32::try_from(req.rate).expect("rate fits u32").to_le_bytes());
    body.extend_from_slice(&u32::try_from(req.delay).expect("delay fits u32").to_le_bytes());
    body.extend_from_slice(
        &u32::try_from(req.link_delay)
            .expect("link delay fits u32")
            .to_le_bytes(),
    );
    body.extend_from_slice(&u32::try_from(req.buffer).expect("buffer fits u32").to_le_bytes());
    body.extend_from_slice(&u32::try_from(req.weight).expect("weight fits u32").to_le_bytes());
    body.push(req.policy.code());
    body.extend_from_slice(&req.per_slot.to_le_bytes());
    body.extend_from_slice(&req.slice_size.to_le_bytes());
    body.extend_from_slice(&req.lifetime.to_le_bytes());
}

fn read_hist_summary(r: &mut Reader<'_>) -> Result<HistSummary, FrameError> {
    Ok(HistSummary {
        count: r.u64()?,
        p50: r.u64()?,
        p90: r.u64()?,
        p99: r.u64()?,
        max: r.u64()?,
    })
}

fn write_hist_summary(body: &mut Vec<u8>, h: &HistSummary) {
    body.extend_from_slice(&h.count.to_le_bytes());
    body.extend_from_slice(&h.p50.to_le_bytes());
    body.extend_from_slice(&h.p90.to_le_bytes());
    body.extend_from_slice(&h.p99.to_le_bytes());
    body.extend_from_slice(&h.max.to_le_bytes());
}

fn reject_code(reason: RejectReason) -> u8 {
    RejectReason::ALL
        .iter()
        .position(|r| *r == reason)
        .expect("RejectReason::ALL is exhaustive") as u8
}

fn reject_from_code(code: u8) -> Result<RejectReason, FrameError> {
    RejectReason::ALL
        .get(code as usize)
        .copied()
        .ok_or(FrameError::BadReject(code))
}

/// Decodes the first frame in `buf`, returning it together with the
/// number of bytes consumed. Never panics; see [`FrameError`].
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Incomplete { need: 4 });
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > MAX_FRAME {
        // Name the offending kind in the error; its byte always
        // directly follows the length prefix, so wait for it if the
        // read stopped exactly on the boundary.
        if buf.len() < 5 {
            return Err(FrameError::Incomplete { need: 5 });
        }
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME,
            kind: buf[4],
        });
    }
    let total = 4 + len;
    if buf.len() < total {
        return Err(FrameError::Incomplete { need: total });
    }
    let kind = buf[4];
    let mut r = Reader::new(&buf[5..total], kind);
    let frame = match kind {
        K_HELLO => {
            let magic = r.u32()?;
            let version = r.u16()?;
            if magic != MAGIC {
                return Err(FrameError::BadMagic(magic));
            }
            Frame::Hello { version }
        }
        K_ADMIT => Frame::Admit(read_admit_request(&mut r)?),
        K_ADMIT_BATCH => {
            let count = r.u32()?;
            let req = read_admit_request(&mut r)?;
            Frame::AdmitBatch { count, req }
        }
        K_DATA => {
            let session = r.u64()?;
            let count = r.u16()? as usize;
            let mut slices = Vec::with_capacity(count);
            for _ in 0..count {
                let size = r.u32()? as Bytes;
                let weight = r.u32()? as Weight;
                if size == 0 {
                    return Err(FrameError::ZeroSlice);
                }
                slices.push((size, weight));
            }
            Frame::Data { session, slices }
        }
        K_DRAIN => Frame::Drain { session: r.u64()? },
        K_EVICT => Frame::Evict { session: r.u64()? },
        K_STATS => Frame::Stats,
        K_STATS_DETAIL => Frame::StatsDetail,
        K_SNAPSHOT => Frame::Snapshot,
        K_GOODBYE => Frame::Goodbye,
        K_WELCOME => Frame::Welcome { version: r.u16()? },
        K_ADMITTED => Frame::Admitted {
            session: r.u64()?,
            shard: r.u32()?,
        },
        K_ADMITTED_BATCH => Frame::AdmittedBatch {
            first_session: r.u64()?,
            count: r.u32()?,
        },
        K_REJECTED => {
            let session = r.u64()?;
            let code = r.u8()?;
            Frame::Rejected {
                session,
                reason: reject_from_code(code)?,
            }
        }
        K_STATS_REPLY => Frame::StatsReply(StatsSnapshot {
            sessions: r.u64()?,
            slices_played: r.u64()?,
            slots: r.u64()?,
            retired: r.u64()?,
        }),
        K_STATS_DETAIL_REPLY => {
            let retired = r.u64()?;
            let migrations = r.u64()?;
            let last_migration_from = r.u32()?;
            let last_migration_to = r.u32()?;
            let mut rejects = [0u64; 6];
            for slot in &mut rejects {
                *slot = r.u64()?;
            }
            let snapshot_bytes = r.u64()?;
            let snapshot_duration_ns = r.u64()?;
            let restored_sessions = r.u64()?;
            let lateness = read_hist_summary(&mut r)?;
            let mut stages = [HistSummary::default(); 4];
            for stage in &mut stages {
                *stage = read_hist_summary(&mut r)?;
            }
            let count = r.u16()? as usize;
            let mut shards = Vec::with_capacity(count.min(MAX_STATS_SHARDS));
            for _ in 0..count {
                shards.push(ShardRow {
                    shard: r.u32()?,
                    sessions: r.u64()?,
                    slots: r.u64()?,
                    played: r.u64()?,
                    sent_bytes: r.u64()?,
                    deadline_misses: r.u64()?,
                    slot_overruns: r.u64()?,
                    imbalance_milli: r.u64()?,
                    latency: read_hist_summary(&mut r)?,
                });
            }
            Frame::StatsDetailReply(Box::new(StatsDetail {
                retired,
                migrations,
                last_migration_from,
                last_migration_to,
                rejects,
                snapshot_bytes,
                snapshot_duration_ns,
                restored_sessions,
                lateness,
                stages,
                shards,
            }))
        }
        K_SNAPSHOT_CHUNK => {
            let count = r.u16()? as usize;
            Frame::SnapshotChunk {
                data: r.take(count)?.to_vec(),
            }
        }
        K_SNAPSHOT_ACK => Frame::SnapshotAck {
            sessions: r.u64()?,
            bytes: r.u64()?,
        },
        K_BYE => Frame::Bye,
        other => return Err(FrameError::UnknownKind(other)),
    };
    r.finish()?;
    Ok((frame, total))
}

/// Encodes a frame into its wire bytes.
///
/// # Panics
///
/// Panics if a [`Frame::Data`] carries more than `u16::MAX` slices or a
/// field exceeds its wire width; callers build frames from validated
/// inputs.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    match frame {
        Frame::Hello { version } => {
            body.push(K_HELLO);
            body.extend_from_slice(&MAGIC.to_le_bytes());
            body.extend_from_slice(&version.to_le_bytes());
        }
        Frame::Admit(req) => {
            body.push(K_ADMIT);
            write_admit_request(&mut body, req);
        }
        Frame::AdmitBatch { count, req } => {
            body.push(K_ADMIT_BATCH);
            body.extend_from_slice(&count.to_le_bytes());
            write_admit_request(&mut body, req);
        }
        Frame::Data { session, slices } => {
            body.push(K_DATA);
            body.extend_from_slice(&session.to_le_bytes());
            let count = u16::try_from(slices.len()).expect("data frame holds at most 2^16 slices");
            body.extend_from_slice(&count.to_le_bytes());
            for (size, weight) in slices {
                assert!(*size > 0, "slices have at least one byte");
                body.extend_from_slice(
                    &u32::try_from(*size).expect("slice size fits u32").to_le_bytes(),
                );
                body.extend_from_slice(
                    &u32::try_from(*weight).expect("weight fits u32").to_le_bytes(),
                );
            }
        }
        Frame::Drain { session } => {
            body.push(K_DRAIN);
            body.extend_from_slice(&session.to_le_bytes());
        }
        Frame::Evict { session } => {
            body.push(K_EVICT);
            body.extend_from_slice(&session.to_le_bytes());
        }
        Frame::Stats => body.push(K_STATS),
        Frame::StatsDetail => body.push(K_STATS_DETAIL),
        Frame::Snapshot => body.push(K_SNAPSHOT),
        Frame::Goodbye => body.push(K_GOODBYE),
        Frame::Welcome { version } => {
            body.push(K_WELCOME);
            body.extend_from_slice(&version.to_le_bytes());
        }
        Frame::Admitted { session, shard } => {
            body.push(K_ADMITTED);
            body.extend_from_slice(&session.to_le_bytes());
            body.extend_from_slice(&shard.to_le_bytes());
        }
        Frame::AdmittedBatch {
            first_session,
            count,
        } => {
            body.push(K_ADMITTED_BATCH);
            body.extend_from_slice(&first_session.to_le_bytes());
            body.extend_from_slice(&count.to_le_bytes());
        }
        Frame::Rejected { session, reason } => {
            body.push(K_REJECTED);
            body.extend_from_slice(&session.to_le_bytes());
            body.push(reject_code(*reason));
        }
        Frame::StatsReply(s) => {
            body.push(K_STATS_REPLY);
            body.extend_from_slice(&s.sessions.to_le_bytes());
            body.extend_from_slice(&s.slices_played.to_le_bytes());
            body.extend_from_slice(&s.slots.to_le_bytes());
            body.extend_from_slice(&s.retired.to_le_bytes());
        }
        Frame::StatsDetailReply(d) => {
            body.push(K_STATS_DETAIL_REPLY);
            body.extend_from_slice(&d.retired.to_le_bytes());
            body.extend_from_slice(&d.migrations.to_le_bytes());
            body.extend_from_slice(&d.last_migration_from.to_le_bytes());
            body.extend_from_slice(&d.last_migration_to.to_le_bytes());
            for n in &d.rejects {
                body.extend_from_slice(&n.to_le_bytes());
            }
            body.extend_from_slice(&d.snapshot_bytes.to_le_bytes());
            body.extend_from_slice(&d.snapshot_duration_ns.to_le_bytes());
            body.extend_from_slice(&d.restored_sessions.to_le_bytes());
            write_hist_summary(&mut body, &d.lateness);
            for stage in &d.stages {
                write_hist_summary(&mut body, stage);
            }
            let count =
                u16::try_from(d.shards.len()).expect("stats reply holds at most 2^16 rows");
            assert!(
                d.shards.len() <= MAX_STATS_SHARDS,
                "stats reply holds at most MAX_STATS_SHARDS rows"
            );
            body.extend_from_slice(&count.to_le_bytes());
            for row in &d.shards {
                body.extend_from_slice(&row.shard.to_le_bytes());
                body.extend_from_slice(&row.sessions.to_le_bytes());
                body.extend_from_slice(&row.slots.to_le_bytes());
                body.extend_from_slice(&row.played.to_le_bytes());
                body.extend_from_slice(&row.sent_bytes.to_le_bytes());
                body.extend_from_slice(&row.deadline_misses.to_le_bytes());
                body.extend_from_slice(&row.slot_overruns.to_le_bytes());
                body.extend_from_slice(&row.imbalance_milli.to_le_bytes());
                write_hist_summary(&mut body, &row.latency);
            }
        }
        Frame::SnapshotChunk { data } => {
            body.push(K_SNAPSHOT_CHUNK);
            assert!(
                data.len() <= MAX_SNAPSHOT_CHUNK,
                "snapshot chunk exceeds MAX_SNAPSHOT_CHUNK"
            );
            let count = u16::try_from(data.len()).expect("chunk length fits u16");
            body.extend_from_slice(&count.to_le_bytes());
            body.extend_from_slice(data);
        }
        Frame::SnapshotAck { sessions, bytes } => {
            body.push(K_SNAPSHOT_ACK);
            body.extend_from_slice(&sessions.to_le_bytes());
            body.extend_from_slice(&bytes.to_le_bytes());
        }
        Frame::Bye => body.push(K_BYE),
    }
    assert!(body.len() <= MAX_FRAME, "encoded frame exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Incremental frame reassembly over a byte stream.
///
/// Feed socket reads with [`extend`](FrameReader::extend) and pull
/// complete frames with [`next_frame`](FrameReader::next_frame);
/// `Ok(None)` means "wait for more bytes". Consumed bytes are
/// compacted away so the buffer stays bounded by one maximal frame
/// plus one read.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// New empty reader.
    pub fn new() -> Self {
        FrameReader { buf: Vec::new() }
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Buffered, not-yet-consumed byte count.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame, if any.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        match decode_frame(&self.buf) {
            Ok((frame, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(frame))
            }
            Err(e) if e.is_incomplete() => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
            },
            Frame::Admit(AdmitRequest {
                rate: 4,
                delay: 8,
                link_delay: 2,
                buffer: 0,
                weight: 3,
                policy: WirePolicy::Greedy,
                per_slot: 4,
                slice_size: 2,
                lifetime: 100,
            }),
            Frame::AdmitBatch {
                count: 5000,
                req: AdmitRequest {
                    rate: 4,
                    delay: 8,
                    link_delay: 0,
                    buffer: 0,
                    weight: 1,
                    policy: WirePolicy::Tail,
                    per_slot: 4,
                    slice_size: 4,
                    lifetime: 0,
                },
            },
            Frame::Data {
                session: u64::MAX,
                slices: vec![(3, 1), (1, 7)],
            },
            Frame::Drain { session: 9 },
            Frame::Evict { session: 10 },
            Frame::Stats,
            Frame::Goodbye,
            Frame::Welcome {
                version: PROTOCOL_VERSION,
            },
            Frame::Admitted {
                session: 42,
                shard: 3,
            },
            Frame::AdmittedBatch {
                first_session: 42,
                count: 4999,
            },
            Frame::Rejected {
                session: 0,
                reason: RejectReason::Backpressure,
            },
            Frame::StatsReply(StatsSnapshot {
                sessions: 1,
                slices_played: 2,
                slots: 3,
                retired: 4,
            }),
            Frame::StatsDetail,
            Frame::StatsDetailReply(Box::new(sample_stats_detail())),
            Frame::Snapshot,
            Frame::SnapshotChunk {
                data: vec![0xab; MAX_SNAPSHOT_CHUNK],
            },
            Frame::SnapshotChunk { data: Vec::new() },
            Frame::SnapshotAck {
                sessions: 128,
                bytes: 1 << 20,
            },
            Frame::Bye,
        ]
    }

    fn sample_stats_detail() -> StatsDetail {
        let digest = |base: u64| HistSummary {
            count: base,
            p50: base * 10,
            p90: base * 20,
            p99: base * 30,
            max: base * 40,
        };
        StatsDetail {
            retired: 11,
            migrations: 12,
            last_migration_from: 0,
            last_migration_to: 1,
            rejects: [0, 1, 2, 3, 4, 5],
            snapshot_bytes: 1 << 22,
            snapshot_duration_ns: 42_000,
            restored_sessions: 77,
            lateness: digest(2),
            stages: [digest(3), digest(4), digest(5), digest(6)],
            shards: vec![
                ShardRow {
                    shard: 0,
                    sessions: 100,
                    slots: 5000,
                    played: 40000,
                    sent_bytes: 1 << 30,
                    deadline_misses: 7,
                    slot_overruns: 2,
                    imbalance_milli: 1710,
                    latency: digest(7),
                },
                ShardRow {
                    shard: 1,
                    ..ShardRow::default()
                },
            ],
        }
    }

    #[test]
    fn roundtrip_every_frame_kind() {
        for frame in sample_frames() {
            let wire = encode_frame(&frame);
            let (back, consumed) = decode_frame(&wire).expect("decodes");
            assert_eq!(back, frame);
            assert_eq!(consumed, wire.len());
        }
    }

    #[test]
    fn every_reject_reason_roundtrips() {
        for reason in RejectReason::ALL {
            let frame = Frame::Rejected { session: 7, reason };
            let (back, _) = decode_frame(&encode_frame(&frame)).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn incomplete_reports_the_needed_length() {
        let wire = encode_frame(&Frame::Drain { session: 1 });
        assert_eq!(
            decode_frame(&wire[..2]),
            Err(FrameError::Incomplete { need: 4 })
        );
        assert_eq!(
            decode_frame(&wire[..6]),
            Err(FrameError::Incomplete { need: wire.len() })
        );
    }

    #[test]
    fn typed_rejections() {
        assert_eq!(decode_frame(&0u32.to_le_bytes()), Err(FrameError::Empty));
        let mut big = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        // The length alone is not enough to report Oversized: the
        // error names the kind byte, so the decoder waits for it.
        assert_eq!(decode_frame(&big), Err(FrameError::Incomplete { need: 5 }));
        big.push(K_STATS);
        assert_eq!(
            decode_frame(&big),
            Err(FrameError::Oversized {
                len: MAX_FRAME + 1,
                max: MAX_FRAME,
                kind: K_STATS
            })
        );
        let unknown = [1, 0, 0, 0, 0x7f];
        assert_eq!(decode_frame(&unknown), Err(FrameError::UnknownKind(0x7f)));
        // Drain payload cut short *inside* the declared length.
        let short = [3, 0, 0, 0, K_DRAIN, 1, 2];
        assert_eq!(
            decode_frame(&short),
            Err(FrameError::Truncated { kind: K_DRAIN })
        );
        // Stats with payload it does not consume.
        let trailing = [2, 0, 0, 0, K_STATS, 9];
        assert_eq!(
            decode_frame(&trailing),
            Err(FrameError::TrailingBytes {
                kind: K_STATS,
                extra: 1
            })
        );
        // Hello with the wrong magic.
        let mut hello = encode_frame(&Frame::Hello { version: 1 });
        hello[5] ^= 0xff;
        assert!(matches!(decode_frame(&hello), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn stats_detail_reply_sizes_and_cap() {
        // Empty-shard reply: 1 kind + 8 retired + 8 migrations + 2·4
        // last-migration shards + 48 rejects + 3·8 snapshot counters +
        // 5·40 digests + 2 row count = 299 body bytes.
        let empty = Frame::StatsDetailReply(Box::default());
        assert_eq!(encode_frame(&empty).len() - 4, 299);
        // Each row adds 100 bytes; MAX_STATS_SHARDS rows still fit.
        let mut full = sample_stats_detail();
        full.shards = (0..MAX_STATS_SHARDS as u32)
            .map(|shard| ShardRow {
                shard,
                ..ShardRow::default()
            })
            .collect();
        let wire = encode_frame(&Frame::StatsDetailReply(Box::new(full.clone())));
        assert!(wire.len() - 4 <= MAX_FRAME, "{}", wire.len());
        assert_eq!(wire.len() - 4, 299 + 100 * MAX_STATS_SHARDS);
        let (back, _) = decode_frame(&wire).unwrap();
        assert_eq!(back, Frame::StatsDetailReply(Box::new(full)));
    }

    #[test]
    fn stats_detail_reply_truncated_rows_are_typed() {
        let wire = encode_frame(&Frame::StatsDetailReply(Box::new(sample_stats_detail())));
        // Cut inside the second shard row (keep the length header
        // honest so the failure is Truncated, not Incomplete).
        let keep = wire.len() - 40;
        let mut cut = wire[..keep].to_vec();
        let body_len = (keep - 4) as u32;
        cut[..4].copy_from_slice(&body_len.to_le_bytes());
        assert_eq!(
            decode_frame(&cut),
            Err(FrameError::Truncated {
                kind: K_STATS_DETAIL_REPLY
            })
        );
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let mut wire = Vec::new();
        let frames = sample_frames();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(3) {
            reader.extend(chunk);
            while let Some(f) = reader.next_frame().expect("valid stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(reader.buffered(), 0);
    }
}
