//! Feeding recorded `rts-obs` traces back through the daemon.
//!
//! Any JSONL trace that carries `slice_admitted` events — the output
//! of `smoothctl run --out`, the mux engine, or the daemon itself —
//! can be regrouped into per-session arrival schedules and admitted as
//! [`crate::ArrivalSource::scheduled`] sessions, so recorded workloads
//! replay against a live daemon.

use std::io::BufRead;

use rts_obs::{Event, Probe, ReplayError};
use rts_stream::{Bytes, Time};

use crate::session::QueuedSlice;

/// One session reconstructed from a trace.
#[derive(Debug, Clone)]
pub struct ReplaySession {
    /// The session tag the trace used.
    pub tag: u32,
    /// Arrival schedule, times rebased so the first slice arrives at
    /// the session's local slot 0.
    pub slices: Vec<QueuedSlice>,
    /// Total bytes across the schedule.
    pub total_bytes: Bytes,
    /// Last local arrival slot.
    pub horizon: Time,
}

#[derive(Default)]
struct ArrivalCollector {
    sessions: Vec<(u32, Vec<QueuedSlice>)>,
}

impl ArrivalCollector {
    fn slot_for(&mut self, tag: u32) -> &mut Vec<QueuedSlice> {
        // Traces interleave a handful of sessions; linear probe keeps
        // ordering stable without a map.
        if let Some(pos) = self.sessions.iter().position(|(t, _)| *t == tag) {
            return &mut self.sessions[pos].1;
        }
        self.sessions.push((tag, Vec::new()));
        &mut self.sessions.last_mut().expect("just pushed").1
    }
}

impl Probe for ArrivalCollector {
    fn enabled(&self) -> bool {
        true
    }

    fn on_event(&mut self, event: &Event) {
        if let Event::SliceAdmitted {
            time,
            session,
            bytes,
            weight,
            ..
        } = event
        {
            self.slot_for(*session).push(QueuedSlice {
                at: *time,
                size: *bytes,
                weight: *weight,
            });
        }
    }
}

/// Reads a JSONL trace and reconstructs one [`ReplaySession`] per
/// session tag that admitted at least one slice.
pub fn replay_sessions<R: BufRead>(reader: R) -> Result<Vec<ReplaySession>, ReplayError> {
    let mut collector = ArrivalCollector::default();
    rts_obs::replay(reader, &mut collector)?;
    Ok(collector
        .sessions
        .into_iter()
        .map(|(tag, mut slices)| {
            let base = slices.iter().map(|s| s.at).min().unwrap_or(0);
            for s in &mut slices {
                s.at -= base;
            }
            slices.sort_by_key(|s| s.at);
            ReplaySession {
                tag,
                total_bytes: slices.iter().map(|s| s.size).sum(),
                horizon: slices.last().map(|s| s.at).unwrap_or(0),
                slices,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regroups_interleaved_sessions_and_rebases_time() {
        let trace = "\
{\"ev\":\"slice_admitted\",\"t\":5,\"session\":1,\"id\":0,\"bytes\":2,\"weight\":1}\n\
{\"ev\":\"slice_admitted\",\"t\":5,\"session\":2,\"id\":0,\"bytes\":3,\"weight\":1}\n\
{\"ev\":\"slot_end\",\"t\":5,\"server_occupancy\":0,\"client_occupancy\":0,\"link_bytes\":0}\n\
{\"ev\":\"slice_admitted\",\"t\":7,\"session\":1,\"id\":1,\"bytes\":4,\"weight\":2}\n";
        let sessions = replay_sessions(trace.as_bytes()).expect("valid trace");
        assert_eq!(sessions.len(), 2);
        let s1 = sessions.iter().find(|s| s.tag == 1).unwrap();
        assert_eq!(s1.total_bytes, 6);
        assert_eq!(s1.horizon, 2);
        assert_eq!(
            s1.slices,
            vec![
                QueuedSlice {
                    at: 0,
                    size: 2,
                    weight: 1
                },
                QueuedSlice {
                    at: 2,
                    size: 4,
                    weight: 2
                }
            ]
        );
        let s2 = sessions.iter().find(|s| s.tag == 2).unwrap();
        assert_eq!(s2.slices.len(), 1);
    }

    #[test]
    fn garbage_trace_is_a_typed_error() {
        assert!(replay_sessions("not json\n".as_bytes()).is_err());
    }
}
