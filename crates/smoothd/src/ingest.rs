//! Network ingest: TCP (and Unix-socket) listeners speaking the frame
//! protocol.
//!
//! Each accepted connection gets its own thread running the same
//! generic handler: reassemble frames with [`FrameReader`], dispatch
//! against the shared [`Daemon`] control handle, and reply with typed
//! frames. The daemon's own queues provide backpressure — a full
//! shard queue surfaces as a [`Frame::Rejected`] with
//! `RejectReason::Backpressure` rather than blocking the socket.
//!
//! Sessions admitted over a connection are drained when it closes
//! (graceful default: bytes already in flight still play out).
//! Protocol violations — bad magic, unknown kinds, truncated or
//! oversized frames — answer with a `Protocol` rejection and close;
//! the decoder is total, so hostile bytes can never panic the daemon.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rts_obs::RejectReason;

use crate::daemon::Daemon;
use crate::frame::{encode_frame, Frame, FrameReader, PROTOCOL_VERSION};
use crate::session::SessionId;

/// How long a connection thread blocks in `read` before re-checking
/// the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(50);

/// A running listener; dropping it does **not** stop the threads —
/// call [`IngestServer::stop`].
pub struct IngestServer {
    shutdown: Arc<AtomicBool>,
    accept_join: JoinHandle<()>,
    local_addr: Option<SocketAddr>,
}

impl IngestServer {
    /// The bound TCP address (None for Unix sockets); lets tests bind
    /// port 0 and discover the port.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Signals every thread to finish and joins the accept loop (which
    /// in turn joins its connection threads).
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.accept_join.join();
    }
}

/// Serves the frame protocol on a TCP listener. `addr` is a
/// `host:port` pair; port 0 picks a free port (see
/// [`IngestServer::local_addr`]).
pub fn serve_tcp(daemon: Arc<Mutex<Daemon>>, addr: &str) -> std::io::Result<IngestServer> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_join = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("smoothd-accept".into())
            .spawn(move || accept_loop(listener, daemon, shutdown))
            .expect("spawn accept loop")
    };
    Ok(IngestServer {
        shutdown,
        accept_join,
        local_addr: Some(local_addr),
    })
}

fn accept_loop(listener: TcpListener, daemon: Arc<Mutex<Daemon>>, shutdown: Arc<AtomicBool>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if prepare(&stream).is_err() {
                    continue;
                }
                let daemon = Arc::clone(&daemon);
                let shutdown = Arc::clone(&shutdown);
                if let Ok(join) = std::thread::Builder::new()
                    .name("smoothd-conn".into())
                    .spawn(move || handle_conn(stream, &daemon, &shutdown))
                {
                    conns.push(join);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
        // Reap finished connection threads so the vec stays small.
        conns.retain(|j| !j.is_finished());
    }
    for join in conns {
        let _ = join.join();
    }
}

fn prepare(stream: &TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(READ_TICK))?;
    stream.set_nodelay(true)
}

/// Serves one connection: any blocking `Read + Write` stream whose
/// reads time out periodically (so shutdown is honored).
fn handle_conn<S: Read + Write>(mut stream: S, daemon: &Mutex<Daemon>, shutdown: &AtomicBool) {
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 4096];
    let mut greeted = false;
    let mut my_sessions: Vec<SessionId> = Vec::new();
    // One registry handle per connection: frame-decode timing goes
    // straight to the atomics, without touching the daemon mutex.
    let telemetry = daemon
        .lock()
        .expect("daemon mutex poisoned")
        .registry();
    'conn: loop {
        if shutdown.load(Ordering::SeqCst) {
            let _ = stream.write_all(&encode_frame(&Frame::Bye));
            break;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break, // EOF
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        reader.extend(&buf[..n]);
        loop {
            let decode_started = std::time::Instant::now();
            let frame = match reader.next_frame() {
                Ok(Some(frame)) => {
                    telemetry
                        .ingest_decode
                        .record(decode_started.elapsed().as_nanos() as u64);
                    frame
                }
                Ok(None) => break,
                Err(_) => {
                    // Typed protocol violation: reject and hang up.
                    let _ = stream.write_all(&encode_frame(&Frame::Rejected {
                        session: 0,
                        reason: RejectReason::Protocol,
                    }));
                    break 'conn;
                }
            };
            match dispatch(frame, &mut stream, daemon, &mut greeted, &mut my_sessions) {
                Flow::Continue => {}
                Flow::Close => break 'conn,
            }
        }
    }
    // Graceful teardown: whatever this connection admitted drains out.
    if !my_sessions.is_empty() {
        let mut d = daemon.lock().expect("daemon mutex poisoned");
        for id in my_sessions {
            let _ = d.drain(id);
        }
    }
}

enum Flow {
    Continue,
    Close,
}

fn dispatch<S: Write>(
    frame: Frame,
    stream: &mut S,
    daemon: &Mutex<Daemon>,
    greeted: &mut bool,
    my_sessions: &mut Vec<SessionId>,
) -> Flow {
    let reply = |stream: &mut S, frame: &Frame| stream.write_all(&encode_frame(frame)).is_ok();
    if !*greeted {
        return match frame {
            Frame::Hello { version } if version == PROTOCOL_VERSION => {
                *greeted = true;
                if reply(
                    stream,
                    &Frame::Welcome {
                        version: PROTOCOL_VERSION,
                    },
                ) {
                    Flow::Continue
                } else {
                    Flow::Close
                }
            }
            _ => {
                // Wrong version or anything before Hello.
                let _ = reply(
                    stream,
                    &Frame::Rejected {
                        session: 0,
                        reason: RejectReason::Protocol,
                    },
                );
                Flow::Close
            }
        };
    }
    match frame {
        Frame::Hello { .. } => {
            let _ = reply(
                stream,
                &Frame::Rejected {
                    session: 0,
                    reason: RejectReason::Protocol,
                },
            );
            Flow::Close
        }
        Frame::Admit(req) => {
            let outcome = daemon
                .lock()
                .expect("daemon mutex poisoned")
                .try_admit(&req);
            let ok = match outcome {
                Ok((session, shard)) => {
                    my_sessions.push(session);
                    reply(stream, &Frame::Admitted { session, shard })
                }
                Err(reason) => reply(stream, &Frame::Rejected { session: 0, reason }),
            };
            if ok {
                Flow::Continue
            } else {
                Flow::Close
            }
        }
        Frame::Data { session, slices } => {
            // Data is not acked on success; errors come back typed.
            let outcome = daemon
                .lock()
                .expect("daemon mutex poisoned")
                .inject(session, slices);
            match outcome {
                Ok(()) => Flow::Continue,
                Err(reason) => {
                    if reply(stream, &Frame::Rejected { session, reason }) {
                        Flow::Continue
                    } else {
                        Flow::Close
                    }
                }
            }
        }
        Frame::Drain { session } => {
            let outcome = daemon
                .lock()
                .expect("daemon mutex poisoned")
                .drain(session);
            if let Err(reason) = outcome {
                let _ = reply(stream, &Frame::Rejected { session, reason });
            } else {
                my_sessions.retain(|&s| s != session);
            }
            Flow::Continue
        }
        Frame::Evict { session } => {
            let outcome = daemon
                .lock()
                .expect("daemon mutex poisoned")
                .evict(session);
            if let Err(reason) = outcome {
                let _ = reply(stream, &Frame::Rejected { session, reason });
            } else {
                my_sessions.retain(|&s| s != session);
            }
            Flow::Continue
        }
        Frame::Stats => {
            let snapshot = {
                let mut d = daemon.lock().expect("daemon mutex poisoned");
                d.poll();
                d.stats()
            };
            if reply(stream, &Frame::StatsReply(snapshot)) {
                Flow::Continue
            } else {
                Flow::Close
            }
        }
        Frame::StatsDetail => {
            let detail = {
                let mut d = daemon.lock().expect("daemon mutex poisoned");
                d.poll();
                d.stats_detail()
            };
            if reply(stream, &Frame::StatsDetailReply(Box::new(detail))) {
                Flow::Continue
            } else {
                Flow::Close
            }
        }
        Frame::Goodbye => {
            let _ = reply(stream, &Frame::Bye);
            Flow::Close
        }
        // Server-to-client frames arriving at the server are protocol
        // violations.
        Frame::Welcome { .. }
        | Frame::Admitted { .. }
        | Frame::Rejected { .. }
        | Frame::StatsReply(_)
        | Frame::StatsDetailReply(_)
        | Frame::Bye => {
            let _ = reply(
                stream,
                &Frame::Rejected {
                    session: 0,
                    reason: RejectReason::Protocol,
                },
            );
            Flow::Close
        }
    }
}

/// Unix-domain-socket listener (same protocol as TCP).
#[cfg(unix)]
pub fn serve_uds(
    daemon: Arc<Mutex<Daemon>>,
    path: &std::path::Path,
) -> std::io::Result<IngestServer> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_join = {
        let shutdown = Arc::clone(&shutdown);
        let path = path.to_path_buf();
        std::thread::Builder::new()
            .name("smoothd-accept-uds".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let ok = stream
                                .set_nonblocking(false)
                                .and_then(|()| stream.set_read_timeout(Some(READ_TICK)));
                            if ok.is_err() {
                                continue;
                            }
                            let daemon = Arc::clone(&daemon);
                            let shutdown = Arc::clone(&shutdown);
                            if let Ok(join) = std::thread::Builder::new()
                                .name("smoothd-conn-uds".into())
                                .spawn(move || handle_conn(stream, &daemon, &shutdown))
                            {
                                conns.push(join);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                    conns.retain(|j| !j.is_finished());
                }
                for join in conns {
                    let _ = join.join();
                }
                let _ = std::fs::remove_file(&path);
            })
            .expect("spawn accept loop")
    };
    Ok(IngestServer {
        shutdown,
        accept_join,
        local_addr: None,
    })
}
