//! Network ingest: TCP (and Unix-socket) listeners speaking the frame
//! protocol.
//!
//! Connections are multiplexed over a **fixed pool** of readiness-loop
//! threads instead of one thread per socket: the accept loop makes
//! each accepted stream nonblocking and deals it round-robin to a pool
//! worker, and every worker sweeps its own connection set — read until
//! `WouldBlock`, dispatch complete frames against the shared
//! [`Daemon`] control handle, buffer replies, flush as the socket
//! allows. An idle worker backs off exponentially (100 µs to 5 ms)
//! so thousands of quiet sockets cost a handful of threads and no
//! spinning. The pool is std-only — no epoll wrapper, no external
//! event library.
//!
//! The daemon's own queues provide backpressure — a full shard queue
//! surfaces as a [`Frame::Rejected`] with `RejectReason::Backpressure`
//! rather than blocking the socket. The Hello-first handshake is
//! enforced per connection exactly as before.
//!
//! Sessions admitted over a connection are drained when it closes
//! (graceful default: bytes already in flight still play out).
//! Protocol violations — bad magic, unknown kinds, truncated or
//! oversized frames — answer with a `Protocol` rejection and close;
//! the decoder is total, so hostile bytes can never panic the daemon.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rts_obs::RejectReason;
use rts_telemetry::Registry;

use crate::daemon::Daemon;
use crate::frame::{encode_frame, Frame, FrameReader, PROTOCOL_VERSION};
use crate::session::SessionId;

/// Default readiness-loop thread count for the ingest pool.
pub const DEFAULT_INGEST_THREADS: usize = 2;

/// Idle-sweep backoff bounds: a worker that made no progress sleeps
/// `BACKOFF_MIN`, doubling up to `BACKOFF_MAX` until bytes move again.
const BACKOFF_MIN: Duration = Duration::from_micros(100);
const BACKOFF_MAX: Duration = Duration::from_millis(5);

/// Stop reading a connection once this many reply bytes are queued;
/// the flush has to catch up first (per-connection memory bound).
const OUTBUF_HIGH_WATER: usize = 64 * 1024;

/// Ingest pool tuning.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Readiness-loop threads sharing all connections (min 1).
    pub threads: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            threads: DEFAULT_INGEST_THREADS,
        }
    }
}

/// Any nonblocking byte stream the pool can drive (TCP or Unix).
trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

type BoxStream = Box<dyn Transport>;

/// A running listener; dropping it does **not** stop the threads —
/// call [`IngestServer::stop`].
pub struct IngestServer {
    shutdown: Arc<AtomicBool>,
    accept_join: JoinHandle<()>,
    local_addr: Option<SocketAddr>,
    pool_threads: usize,
}

impl IngestServer {
    /// The bound TCP address (None for Unix sockets); lets tests bind
    /// port 0 and discover the port.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Number of readiness-loop threads serving all connections.
    pub fn pool_threads(&self) -> usize {
        self.pool_threads
    }

    /// Signals every thread to finish and joins the accept loop (which
    /// in turn joins the pool workers).
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.accept_join.join();
    }
}

/// Serves the frame protocol on a TCP listener with the default pool.
/// `addr` is a `host:port` pair; port 0 picks a free port (see
/// [`IngestServer::local_addr`]).
pub fn serve_tcp(daemon: Arc<Mutex<Daemon>>, addr: &str) -> std::io::Result<IngestServer> {
    serve_tcp_with(daemon, addr, IngestConfig::default())
}

/// [`serve_tcp`] with explicit pool tuning.
pub fn serve_tcp_with(
    daemon: Arc<Mutex<Daemon>>,
    addr: &str,
    cfg: IngestConfig,
) -> std::io::Result<IngestServer> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let threads = cfg.threads.max(1);
    // Spawn the pool before returning so the server's thread footprint
    // is complete the moment the bind succeeds — connection load never
    // adds a thread.
    let pool = spawn_pool(&daemon, &shutdown, threads);
    let accept_join = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("smoothd-accept".into())
            .spawn(move || accept_loop(listener, pool, shutdown))
            .expect("spawn accept loop")
    };
    Ok(IngestServer {
        shutdown,
        accept_join,
        local_addr: Some(local_addr),
        pool_threads: threads,
    })
}

fn accept_loop(listener: TcpListener, pool: Pool, shutdown: Arc<AtomicBool>) {
    let mut next = 0usize;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                let _ = pool.feeds[next % pool.feeds.len()].send(Box::new(stream));
                next += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
    drop(pool.feeds);
    for join in pool.joins {
        let _ = join.join();
    }
}

struct Pool {
    feeds: Vec<Sender<BoxStream>>,
    joins: Vec<JoinHandle<()>>,
}

fn spawn_pool(daemon: &Arc<Mutex<Daemon>>, shutdown: &Arc<AtomicBool>, threads: usize) -> Pool {
    // One registry handle per worker: frame-decode timing goes
    // straight to the atomics, without touching the daemon mutex.
    let registry = daemon.lock().expect("daemon mutex poisoned").registry();
    let mut feeds = Vec::with_capacity(threads);
    let mut joins = Vec::with_capacity(threads);
    for i in 0..threads {
        let (tx, rx) = mpsc::channel::<BoxStream>();
        let daemon = Arc::clone(daemon);
        let shutdown = Arc::clone(shutdown);
        let registry = Arc::clone(&registry);
        let join = std::thread::Builder::new()
            .name(format!("smoothd-ingest-{i}"))
            .spawn(move || pool_worker(rx, daemon, shutdown, registry))
            .expect("spawn ingest pool worker");
        feeds.push(tx);
        joins.push(join);
    }
    Pool { feeds, joins }
}

/// Per-connection state a pool worker sweeps over.
struct Conn {
    stream: BoxStream,
    reader: FrameReader,
    /// Replies queued behind a socket that would block.
    outbuf: Vec<u8>,
    greeted: bool,
    /// Set when the connection is winding down: no more reads, drop
    /// once `outbuf` is flushed.
    closing: bool,
    my_sessions: Vec<SessionId>,
}

impl Conn {
    fn new(stream: BoxStream) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(),
            outbuf: Vec::new(),
            greeted: false,
            closing: false,
            my_sessions: Vec::new(),
        }
    }
}

fn pool_worker(
    rx: Receiver<BoxStream>,
    daemon: Arc<Mutex<Daemon>>,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut buf = [0u8; 4096];
    let mut backoff = BACKOFF_MIN;
    while !shutdown.load(Ordering::SeqCst) {
        let mut progress = false;
        // Empty and Disconnected both stop draining; Disconnected
        // (accept loop gone) still serves what we have until shutdown.
        while let Ok(stream) = rx.try_recv() {
            conns.push(Conn::new(stream));
            progress = true;
        }
        let mut i = 0;
        while i < conns.len() {
            if sweep_conn(&mut conns[i], &daemon, &registry, &mut buf, &mut progress) {
                i += 1;
            } else {
                let conn = conns.swap_remove(i);
                release_sessions(&conn, &daemon);
                progress = true;
            }
        }
        if progress {
            backoff = BACKOFF_MIN;
        } else {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(BACKOFF_MAX);
        }
    }
    // Shutdown: best-effort Bye, then graceful drain of everything
    // the surviving connections admitted.
    for conn in &mut conns {
        conn.outbuf.extend_from_slice(&encode_frame(&Frame::Bye));
        let _ = flush(conn);
    }
    for conn in &conns {
        release_sessions(conn, &daemon);
    }
}

/// One readiness sweep over a single connection; false means drop it.
fn sweep_conn(
    conn: &mut Conn,
    daemon: &Mutex<Daemon>,
    registry: &Registry,
    buf: &mut [u8],
    progress: &mut bool,
) -> bool {
    if !conn.closing {
        loop {
            if conn.outbuf.len() >= OUTBUF_HIGH_WATER {
                break; // flush before reading more
            }
            match conn.stream.read(buf) {
                Ok(0) => {
                    conn.closing = true; // EOF
                    break;
                }
                Ok(n) => {
                    *progress = true;
                    conn.reader.extend(&buf[..n]);
                    if !pump_frames(conn, daemon, registry) {
                        conn.closing = true;
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }
    match flush(conn) {
        Ok(written) => {
            if written > 0 {
                *progress = true;
            }
        }
        Err(()) => return false,
    }
    !(conn.closing && conn.outbuf.is_empty())
}

/// Decodes and dispatches every complete frame buffered on `conn`;
/// false means the connection must close (protocol violation or a
/// dispatch that ends the conversation). Replies land in
/// `conn.outbuf`.
fn pump_frames(conn: &mut Conn, daemon: &Mutex<Daemon>, registry: &Registry) -> bool {
    loop {
        let decode_started = std::time::Instant::now();
        let frame = match conn.reader.next_frame() {
            Ok(Some(frame)) => {
                registry
                    .ingest_decode
                    .record(decode_started.elapsed().as_nanos() as u64);
                frame
            }
            Ok(None) => return true,
            Err(_) => {
                // Typed protocol violation: reject and hang up.
                conn.outbuf.extend_from_slice(&encode_frame(&Frame::Rejected {
                    session: 0,
                    reason: RejectReason::Protocol,
                }));
                return false;
            }
        };
        match dispatch(
            frame,
            &mut conn.outbuf,
            daemon,
            &mut conn.greeted,
            &mut conn.my_sessions,
        ) {
            Flow::Continue => {}
            Flow::Close => return false,
        }
    }
}

/// Writes as much queued reply data as the socket accepts right now;
/// `Err` means the peer is gone.
fn flush(conn: &mut Conn) -> Result<usize, ()> {
    let mut written = 0;
    while written < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[written..]) {
            Ok(0) => return Err(()),
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    conn.outbuf.drain(..written);
    Ok(written)
}

/// Graceful teardown: whatever this connection admitted drains out.
fn release_sessions(conn: &Conn, daemon: &Mutex<Daemon>) {
    if conn.my_sessions.is_empty() {
        return;
    }
    let mut d = daemon.lock().expect("daemon mutex poisoned");
    for &id in &conn.my_sessions {
        let _ = d.drain(id);
    }
}

enum Flow {
    Continue,
    Close,
}

fn dispatch(
    frame: Frame,
    out: &mut Vec<u8>,
    daemon: &Mutex<Daemon>,
    greeted: &mut bool,
    my_sessions: &mut Vec<SessionId>,
) -> Flow {
    let reply = |out: &mut Vec<u8>, frame: &Frame| out.extend_from_slice(&encode_frame(frame));
    if !*greeted {
        return match frame {
            Frame::Hello { version } if version == PROTOCOL_VERSION => {
                *greeted = true;
                reply(
                    out,
                    &Frame::Welcome {
                        version: PROTOCOL_VERSION,
                    },
                );
                Flow::Continue
            }
            _ => {
                // Wrong version or anything before Hello.
                reply(
                    out,
                    &Frame::Rejected {
                        session: 0,
                        reason: RejectReason::Protocol,
                    },
                );
                Flow::Close
            }
        };
    }
    match frame {
        Frame::Hello { .. } => {
            reply(
                out,
                &Frame::Rejected {
                    session: 0,
                    reason: RejectReason::Protocol,
                },
            );
            Flow::Close
        }
        Frame::Admit(req) => {
            let outcome = daemon
                .lock()
                .expect("daemon mutex poisoned")
                .try_admit(&req);
            match outcome {
                Ok((session, shard)) => {
                    my_sessions.push(session);
                    reply(out, &Frame::Admitted { session, shard });
                }
                Err(reason) => reply(out, &Frame::Rejected { session: 0, reason }),
            }
            Flow::Continue
        }
        Frame::AdmitBatch { count, req } => {
            if count == 0 {
                reply(
                    out,
                    &Frame::Rejected {
                        session: 0,
                        reason: RejectReason::Protocol,
                    },
                );
                return Flow::Close;
            }
            let outcome = daemon
                .lock()
                .expect("daemon mutex poisoned")
                .admit_batch(&req, count as u64);
            match outcome {
                Ok(batch) => {
                    my_sessions.extend(batch.first..batch.first + batch.admitted);
                    reply(
                        out,
                        &Frame::AdmittedBatch {
                            first_session: batch.first,
                            count: batch.admitted as u32,
                        },
                    );
                }
                Err(reason) => reply(out, &Frame::Rejected { session: 0, reason }),
            }
            Flow::Continue
        }
        Frame::Data { session, slices } => {
            // Data is not acked on success; errors come back typed.
            let outcome = daemon
                .lock()
                .expect("daemon mutex poisoned")
                .inject(session, slices);
            if let Err(reason) = outcome {
                reply(out, &Frame::Rejected { session, reason });
            }
            Flow::Continue
        }
        Frame::Drain { session } => {
            let outcome = daemon
                .lock()
                .expect("daemon mutex poisoned")
                .drain(session);
            if let Err(reason) = outcome {
                reply(out, &Frame::Rejected { session, reason });
            } else {
                my_sessions.retain(|&s| s != session);
            }
            Flow::Continue
        }
        Frame::Evict { session } => {
            let outcome = daemon
                .lock()
                .expect("daemon mutex poisoned")
                .evict(session);
            if let Err(reason) = outcome {
                reply(out, &Frame::Rejected { session, reason });
            } else {
                my_sessions.retain(|&s| s != session);
            }
            Flow::Continue
        }
        Frame::Stats => {
            let snapshot = {
                let mut d = daemon.lock().expect("daemon mutex poisoned");
                d.poll();
                d.stats()
            };
            reply(out, &Frame::StatsReply(snapshot));
            Flow::Continue
        }
        Frame::StatsDetail => {
            let detail = {
                let mut d = daemon.lock().expect("daemon mutex poisoned");
                d.poll();
                d.stats_detail()
            };
            reply(out, &Frame::StatsDetailReply(Box::new(detail)));
            Flow::Continue
        }
        Frame::Snapshot => {
            let (sessions, bytes) = daemon
                .lock()
                .expect("daemon mutex poisoned")
                .snapshot();
            let total = bytes.len() as u64;
            for chunk in bytes.chunks(crate::frame::MAX_SNAPSHOT_CHUNK) {
                reply(
                    out,
                    &Frame::SnapshotChunk {
                        data: chunk.to_vec(),
                    },
                );
            }
            reply(
                out,
                &Frame::SnapshotAck {
                    sessions,
                    bytes: total,
                },
            );
            Flow::Continue
        }
        Frame::Goodbye => {
            reply(out, &Frame::Bye);
            Flow::Close
        }
        // Server-to-client frames arriving at the server are protocol
        // violations.
        Frame::Welcome { .. }
        | Frame::Admitted { .. }
        | Frame::AdmittedBatch { .. }
        | Frame::Rejected { .. }
        | Frame::StatsReply(_)
        | Frame::StatsDetailReply(_)
        | Frame::SnapshotChunk { .. }
        | Frame::SnapshotAck { .. }
        | Frame::Bye => {
            reply(
                out,
                &Frame::Rejected {
                    session: 0,
                    reason: RejectReason::Protocol,
                },
            );
            Flow::Close
        }
    }
}

/// Unix-domain-socket listener (same protocol and pool as TCP).
#[cfg(unix)]
pub fn serve_uds(
    daemon: Arc<Mutex<Daemon>>,
    path: &std::path::Path,
) -> std::io::Result<IngestServer> {
    serve_uds_with(daemon, path, IngestConfig::default())
}

/// [`serve_uds`] with explicit pool tuning.
#[cfg(unix)]
pub fn serve_uds_with(
    daemon: Arc<Mutex<Daemon>>,
    path: &std::path::Path,
    cfg: IngestConfig,
) -> std::io::Result<IngestServer> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let threads = cfg.threads.max(1);
    let pool = spawn_pool(&daemon, &shutdown, threads);
    let accept_join = {
        let shutdown = Arc::clone(&shutdown);
        let path = path.to_path_buf();
        std::thread::Builder::new()
            .name("smoothd-accept-uds".into())
            .spawn(move || {
                let mut next = 0usize;
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = pool.feeds[next % pool.feeds.len()].send(Box::new(stream));
                            next += 1;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
                drop(pool.feeds);
                for join in pool.joins {
                    let _ = join.join();
                }
                let _ = std::fs::remove_file(&path);
            })
            .expect("spawn accept loop")
    };
    Ok(IngestServer {
        shutdown,
        accept_join,
        local_addr: None,
        pool_threads: threads,
    })
}
