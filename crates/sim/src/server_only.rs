//! Single-buffer runs: the Section 4 model.
//!
//! For the weighted analysis the paper "zooms in to the server" — a
//! single limited-space FIFO buffer with a fixed drain rate; benefit is
//! the weight of the slices fully submitted to the link. With balanced
//! parameters (`B = R·D`, `Bc = B`) Theorems 3.5/3.9 and Lemmas 3.3/3.4
//! guarantee the client adds no further loss, so this is exactly the
//! benefit of the end-to-end schedule (the integration tests verify the
//! reduction against [`simulate`](crate::simulate)).

use rts_core::{DropPolicy, Server};
use rts_obs::{Event, NoopProbe, Probe};
use rts_stream::{Bytes, InputStream, Weight};

/// Aggregate result of a single-buffer run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerRun {
    /// Total bytes offered.
    pub offered_bytes: Bytes,
    /// Total weight offered.
    pub offered_weight: Weight,
    /// Bytes fully transmitted (server throughput).
    pub throughput: Bytes,
    /// Weight of fully transmitted slices (benefit).
    pub benefit: Weight,
    /// Slices fully transmitted.
    pub sent_slices: u64,
    /// Slices dropped at the server.
    pub dropped_slices: u64,
}

impl ServerRun {
    /// Fraction of offered weight lost, in `[0, 1]`.
    pub fn weighted_loss(&self) -> f64 {
        if self.offered_weight == 0 {
            0.0
        } else {
            (self.offered_weight - self.benefit) as f64 / self.offered_weight as f64
        }
    }

    /// Fraction of offered weight delivered, in `[0, 1]`.
    pub fn benefit_fraction(&self) -> f64 {
        if self.offered_weight == 0 {
            1.0
        } else {
            self.benefit as f64 / self.offered_weight as f64
        }
    }
}

/// Runs the generic server algorithm alone — buffer `buffer`, rate
/// `rate`, the given drop policy — over the whole stream, draining the
/// buffer after the last arrival.
///
/// # Example
///
/// ```
/// use rts_core::policy::GreedyByteValue;
/// use rts_sim::run_server_only;
/// use rts_stream::{FrameKind, InputStream, SliceSpec};
///
/// let stream = InputStream::from_frames([vec![
///     SliceSpec::new(1, 9, FrameKind::I),
///     SliceSpec::new(1, 1, FrameKind::B),
///     SliceSpec::new(1, 1, FrameKind::B),
/// ]]);
/// let run = run_server_only(&stream, 1, 1, GreedyByteValue::new());
/// // R=1 sends one slice, B=1 stores one more; greedy keeps 9 and a 1.
/// assert_eq!(run.benefit, 10);
/// assert_eq!(run.dropped_slices, 1);
/// ```
pub fn run_server_only<P: DropPolicy>(
    stream: &InputStream,
    buffer: Bytes,
    rate: Bytes,
    policy: P,
) -> ServerRun {
    run_server_only_probed(stream, buffer, rate, policy, &mut NoopProbe)
}

/// [`run_server_only`] with an observability probe. There is no client
/// stage, so the feed has no playout events and each
/// [`Event::SlotEnd`] reports a zero client occupancy; the per-slot
/// `link_bytes` is the server's submitted bytes.
pub fn run_server_only_probed<P: DropPolicy, Pr: Probe>(
    stream: &InputStream,
    buffer: Bytes,
    rate: Bytes,
    policy: P,
    probe: &mut Pr,
) -> ServerRun {
    let mut server = Server::new(buffer, rate, policy);
    let mut run = ServerRun {
        offered_bytes: stream.total_bytes(),
        offered_weight: stream.total_weight(),
        ..ServerRun::default()
    };
    if probe.enabled() {
        probe.on_event(&Event::RunStart { time: 0, sessions: 1 });
    }
    let absorb =
        |run: &mut ServerRun, step: &rts_core::ServerStep, t: u64, probe: &mut Pr| {
            for c in &step.sent {
                if c.completed {
                    run.throughput += c.slice.size;
                    run.benefit += c.slice.weight;
                    run.sent_slices += 1;
                }
            }
            run.dropped_slices += step.dropped.len() as u64;
            if probe.enabled() {
                probe.on_event(&Event::SlotEnd {
                    time: t,
                    server_occupancy: step.occupancy,
                    client_occupancy: 0,
                    link_bytes: step.sent_bytes(),
                });
            }
        };

    let mut frames = stream.frames().iter().peekable();
    let mut t = 0;
    let mut step = rts_core::ServerStep::default();
    while let Some(f) = frames.peek() {
        let arrivals: &[_] = if f.time == t {
            let f = frames.next().expect("peeked");
            &f.slices
        } else {
            &[]
        };
        server.step_into_probed(t, arrivals, &mut step, probe);
        absorb(&mut run, &step, t, probe);
        t += 1;
    }
    while !server.is_drained() {
        server.step_into_probed(t, &[], &mut step, probe);
        absorb(&mut run, &step, t, probe);
        t += 1;
    }
    if probe.enabled() {
        probe.on_event(&Event::RunEnd { time: t, slots: t });
    }
    run
}

/// Like [`run_server_only`], but with a renegotiated link: `schedule`
/// lists `(from_step, rate)` changes in increasing time order (the
/// first entry must start at step 0). The drain after the last arrival
/// continues at the final scheduled rate.
///
/// # Panics
///
/// Panics if the schedule is empty, unsorted, does not start at 0, or
/// contains a zero rate.
pub fn run_server_with_rate_schedule<P: DropPolicy>(
    stream: &InputStream,
    buffer: Bytes,
    schedule: &[(u64, Bytes)],
    policy: P,
) -> ServerRun {
    assert!(!schedule.is_empty(), "rate schedule must be non-empty");
    assert_eq!(schedule[0].0, 0, "rate schedule must start at step 0");
    assert!(
        schedule.windows(2).all(|w| w[0].0 < w[1].0),
        "rate schedule must be strictly increasing in time"
    );
    let mut server = Server::new(buffer, schedule[0].1, policy);
    let mut run = ServerRun {
        offered_bytes: stream.total_bytes(),
        offered_weight: stream.total_weight(),
        ..ServerRun::default()
    };
    let absorb = |run: &mut ServerRun, step: &rts_core::ServerStep| {
        for c in &step.sent {
            if c.completed {
                run.throughput += c.slice.size;
                run.benefit += c.slice.weight;
                run.sent_slices += 1;
            }
        }
        run.dropped_slices += step.dropped.len() as u64;
    };

    let mut changes = schedule.iter().copied().peekable();
    let mut frames = stream.frames().iter().peekable();
    let mut t = 0;
    let mut step = rts_core::ServerStep::default();
    loop {
        while let Some(&(at, rate)) = changes.peek() {
            if at > t {
                break;
            }
            server.set_rate(rate);
            changes.next();
        }
        let arrivals: &[_] = match frames.peek() {
            Some(f) if f.time == t => &frames.next().expect("peeked").slices,
            _ => &[],
        };
        server.step_into(t, arrivals, &mut step);
        absorb(&mut run, &step);
        let arrivals_done = frames.peek().is_none();
        if arrivals_done && server.is_drained() && changes.peek().is_none() {
            break;
        }
        t += 1;
        // A schedule stretching far past the data would spin; once the
        // data is gone, fast-forward through pure rate changes.
        if arrivals_done && server.is_drained() {
            if let Some(&(at, _)) = changes.peek() {
                t = t.max(at);
            }
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use rts_core::policy::{GreedyByteValue, TailDrop};
    use rts_stream::SliceSpec;

    fn unit_frames(counts: &[usize]) -> InputStream {
        InputStream::from_frames(
            counts
                .iter()
                .map(|&c| vec![SliceSpec::unit(); c])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn everything_sent_when_capacity_suffices() {
        let s = unit_frames(&[3, 0, 0]);
        let run = run_server_only(&s, 2, 1, TailDrop::new());
        assert_eq!(run.throughput, 3);
        assert_eq!(run.benefit, 3);
        assert_eq!(run.dropped_slices, 0);
        assert_eq!(run.weighted_loss(), 0.0);
    }

    #[test]
    fn conservation_of_slices() {
        let s = unit_frames(&[9, 0, 4, 11]);
        let run = run_server_only(&s, 2, 2, TailDrop::new());
        assert_eq!(run.sent_slices + run.dropped_slices, 24);
        assert_eq!(run.throughput + (24 - run.sent_slices), 24);
    }

    #[test]
    fn sparse_streams_drain_during_gaps() {
        let mut b = InputStream::builder();
        b.frame(0, vec![SliceSpec::unit(); 4]);
        b.frame(6, vec![SliceSpec::unit(); 4]);
        let s = b.build();
        // B=3, R=1: first burst keeps 4 (send 1 store 3), gap drains.
        let run = run_server_only(&s, 3, 1, TailDrop::new());
        assert_eq!(run.throughput, 8);
    }

    #[test]
    fn rate_schedule_with_one_entry_matches_fixed_rate() {
        let s = unit_frames(&[7, 0, 9, 3, 0, 0, 5]);
        let fixed = run_server_only(&s, 4, 2, TailDrop::new());
        let scheduled = run_server_with_rate_schedule(&s, 4, &[(0, 2)], TailDrop::new());
        assert_eq!(fixed, scheduled);
    }

    #[test]
    fn rate_drop_mid_run_causes_loss() {
        // Rate 4 handles 4/step; dropping to 1 at t=3 overflows.
        let s = unit_frames(&[4, 4, 4, 4, 4, 4]);
        let full = run_server_with_rate_schedule(&s, 2, &[(0, 4)], TailDrop::new());
        assert_eq!(full.dropped_slices, 0);
        let choked = run_server_with_rate_schedule(&s, 2, &[(0, 4), (3, 1)], TailDrop::new());
        assert!(choked.dropped_slices > 0);
        assert_eq!(
            choked.sent_slices + choked.dropped_slices,
            s.slice_count() as u64
        );
    }

    #[test]
    fn rate_increase_rescues_a_backlog() {
        let s = unit_frames(&[6]);
        let slow = run_server_with_rate_schedule(&s, 2, &[(0, 1)], TailDrop::new());
        let boosted = run_server_with_rate_schedule(&s, 2, &[(0, 1), (1, 8)], TailDrop::new());
        assert!(boosted.throughput >= slow.throughput);
    }

    #[test]
    fn schedule_past_the_data_terminates() {
        let s = unit_frames(&[2]);
        let run = run_server_with_rate_schedule(&s, 4, &[(0, 1), (1000, 2)], TailDrop::new());
        assert_eq!(run.throughput, 2);
    }

    #[test]
    #[should_panic(expected = "start at step 0")]
    fn schedule_must_start_at_zero() {
        run_server_with_rate_schedule(&unit_frames(&[1]), 1, &[(1, 1)], TailDrop::new());
    }

    #[test]
    fn greedy_beats_taildrop_on_adversarial_weights() {
        let s = rts_stream::gen::greedy_lower_bound_stream(4, 1, 10);
        let greedy = run_server_only(&s, 4, 1, GreedyByteValue::new());
        let tail = run_server_only(&s, 4, 1, TailDrop::new());
        assert!(greedy.benefit >= tail.benefit);
        assert!(greedy.benefit_fraction() > 0.0);
    }
}
