//! Tandem smoothing: a chain of store-and-forward hops.
//!
//! Rexford and Towsley's internetwork setting (the paper's related
//! work): the stream crosses several links, each with its own rate and
//! a smoothing buffer at its entrance. This module chains the generic
//! server through `K` hops:
//!
//! ```text
//! source → [server 0] → link 0 → [relay 1] → link 1 → … → client
//! ```
//!
//! Each relay **reassembles** arriving slices (store-and-forward: a
//! slice is eligible for forwarding once all its bytes have arrived)
//! and then runs the same generic algorithm — work-conserving FIFO
//! drain, whole-slice overflow drops via a per-hop policy. Bytes being
//! reassembled occupy a separate reassembly area whose peak is reported
//! in the result (a cut-through relay would need byte-level scheduling,
//! which the paper's single-buffer model deliberately avoids).
//!
//! The client plays frame `f` at `f + ΣP_i + D`; `D` must cover the
//! worst-case queueing of *all* hops (`Σ ⌈B_i/R_i⌉` by Lemma 3.2 per
//! hop), which [`tandem_delay`] computes.

use std::collections::HashMap;

use rts_core::{Client, DropPolicy, SentChunk, Server};
use rts_obs::{Event, NoopProbe, Probe, Tagged};
use rts_stream::{Bytes, InputStream, Slice, SliceId, Time};

use crate::link::{Link, LinkModel};

/// One hop: the buffer in front of a link and the link itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopConfig {
    /// Buffer capacity at the hop's entrance.
    pub buffer: Bytes,
    /// Link rate out of the hop.
    pub rate: Bytes,
    /// Propagation delay of the hop's link.
    pub link_delay: Time,
}

/// Outcome of a tandem run.
#[derive(Debug, Clone, PartialEq)]
pub struct TandemReport {
    /// Weight of slices played on time.
    pub benefit: u64,
    /// Bytes played on time.
    pub played_bytes: Bytes,
    /// Slices played.
    pub played_slices: u64,
    /// Overflow drops per hop.
    pub hop_drops: Vec<u64>,
    /// Slices discarded by the client (late/overflow/incomplete).
    pub client_drops: u64,
    /// Peak reassembly-area occupancy per relay hop (hop 0 has none).
    pub reassembly_peak: Vec<Bytes>,
    /// Total offered weight.
    pub offered_weight: u64,
    /// Total offered bytes.
    pub offered_bytes: Bytes,
}

impl TandemReport {
    /// Fraction of offered weight lost.
    pub fn weighted_loss(&self) -> f64 {
        if self.offered_weight == 0 {
            0.0
        } else {
            (self.offered_weight - self.benefit) as f64 / self.offered_weight as f64
        }
    }
}

/// The smoothing delay needed to cover every hop's worst-case queueing
/// plus a caller-chosen slack: `Σ ⌈B_i/R_i⌉ + slack` (Lemma 3.2 applied
/// per hop; the relays' reassembly adds no delay beyond the upstream
/// link's own serialization, which the per-hop bound already covers).
pub fn tandem_delay(hops: &[HopConfig], slack: Time) -> Time {
    hops.iter()
        .map(|h| h.buffer.div_ceil(h.rate.max(1)))
        .sum::<Time>()
        + slack
}

/// A relay stage: slice reassembly in front of a generic server.
struct Relay<P> {
    server: Server<P>,
    partial: HashMap<SliceId, (Slice, Bytes)>,
    reassembly_bytes: Bytes,
    reassembly_peak: Bytes,
}

impl<P: DropPolicy> Relay<P> {
    fn new(config: HopConfig, policy: P) -> Self {
        Relay {
            server: Server::new(config.buffer, config.rate, policy),
            partial: HashMap::new(),
            reassembly_bytes: 0,
            reassembly_peak: 0,
        }
    }

    /// Absorbs upstream deliveries; appends the slices that completed
    /// reassembly this step into `ready` (in FIFO completion order).
    fn absorb_into(&mut self, delivered: &[SentChunk], ready: &mut Vec<Slice>) {
        for c in delivered {
            let entry = self.partial.entry(c.slice.id).or_insert((c.slice, 0));
            entry.1 += c.bytes;
            self.reassembly_bytes += c.bytes;
            if entry.1 == entry.0.size {
                ready.push(entry.0);
                self.reassembly_bytes -= entry.0.size;
                self.partial.remove(&c.slice.id);
            }
        }
        self.reassembly_peak = self.reassembly_peak.max(self.reassembly_bytes);
    }
}

/// Runs the stream through a chain of hops and a final client.
///
/// Hop 0 is the origin server (fed directly by the source); hops
/// `1..` are store-and-forward relays. The client budgets the sum of
/// link delays and plays with smoothing delay `delay`; its capacity is
/// the balanced `R_last · delay` (Lemma 3.4 applied to the last link).
///
/// `make_policy(hop)` constructs the drop policy for each hop.
///
/// # Panics
///
/// Panics if `hops` is empty or any rate is zero.
pub fn simulate_tandem<P, F>(
    stream: &InputStream,
    hops: &[HopConfig],
    delay: Time,
    make_policy: F,
) -> TandemReport
where
    P: DropPolicy,
    F: Fn(usize) -> P,
{
    simulate_tandem_probed(stream, hops, delay, make_policy, &mut NoopProbe)
}

/// [`simulate_tandem`] with an observability probe.
///
/// The shared probe is scoped per stage via [`Tagged`]: slice events
/// from hop `k`'s server carry session tag `k`, and the final client's
/// playouts and discards carry the last hop's tag `K−1` (the client
/// terminates that hop's link). Note that in a tandem every surviving
/// slice is admitted and sent once *per hop*, so trace-level admission
/// counts are per-stage, not per-source-slice. [`Event::SlotEnd`]
/// reports network-wide totals: summed hop occupancies, the client's
/// occupancy, and the bytes submitted to all links that slot.
pub fn simulate_tandem_probed<P, F, Pr>(
    stream: &InputStream,
    hops: &[HopConfig],
    delay: Time,
    make_policy: F,
    probe: &mut Pr,
) -> TandemReport
where
    P: DropPolicy,
    F: Fn(usize) -> P,
    Pr: Probe,
{
    let links: Vec<Link> = hops.iter().map(|h| Link::new(h.link_delay)).collect();
    simulate_tandem_with_links_probed(stream, hops, delay, make_policy, links, probe)
}

/// [`simulate_tandem`] over caller-supplied links — one [`LinkModel`]
/// per hop, in hop order. This is how fault-injecting links (the
/// `FaultyLink` wrapper of `rts-faults`) are threaded through a tandem:
/// the client still budgets the *nominal* per-hop delays, so any extra
/// delay a faulty link introduces surfaces as accounted late/incomplete
/// drops rather than silent corruption.
///
/// # Panics
///
/// Panics if `hops` is empty, or `links.len() != hops.len()`.
pub fn simulate_tandem_with_links<P, F, L>(
    stream: &InputStream,
    hops: &[HopConfig],
    delay: Time,
    make_policy: F,
    links: Vec<L>,
) -> TandemReport
where
    P: DropPolicy,
    F: Fn(usize) -> P,
    L: LinkModel,
{
    simulate_tandem_with_links_probed(stream, hops, delay, make_policy, links, &mut NoopProbe)
}

/// [`simulate_tandem_with_links`] with an observability probe (see
/// [`simulate_tandem_probed`] for tagging; additionally each link's
/// fault windows are emitted as [`Event::LinkFault`] tagged with the
/// hop index).
pub fn simulate_tandem_with_links_probed<P, F, L, Pr>(
    stream: &InputStream,
    hops: &[HopConfig],
    delay: Time,
    make_policy: F,
    mut links: Vec<L>,
    probe: &mut Pr,
) -> TandemReport
where
    P: DropPolicy,
    F: Fn(usize) -> P,
    L: LinkModel,
    Pr: Probe,
{
    assert!(!hops.is_empty(), "a tandem needs at least one hop");
    assert_eq!(links.len(), hops.len(), "one link per hop");
    let total_link_delay: Time = hops.iter().map(|h| h.link_delay).sum();

    let mut origin = Server::new(hops[0].buffer, hops[0].rate, make_policy(0));
    let mut relays: Vec<Relay<P>> = hops
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, h)| Relay::new(*h, make_policy(i)))
        .collect();
    let last_rate = hops.last().expect("non-empty").rate;
    let mut client = Client::new(last_rate * delay, delay, total_link_delay);

    let mut report = TandemReport {
        benefit: 0,
        played_bytes: 0,
        played_slices: 0,
        hop_drops: vec![0; hops.len()],
        client_drops: 0,
        reassembly_peak: vec![0; hops.len()],
        offered_weight: stream.total_weight(),
        offered_bytes: stream.total_bytes(),
    };

    let worst_link_delay: Time = links.iter().map(|l| l.worst_case_delay()).sum();
    let last_arrival = stream.last_arrival().unwrap_or(0);
    let horizon = last_arrival
        + total_link_delay.max(worst_link_delay)
        + delay
        + (stream.total_bytes() + 1) * hops.len() as u64
            / hops.iter().map(|h| h.rate).min().unwrap_or(1).max(1)
        + 8;

    if probe.enabled() {
        probe.on_event(&Event::RunStart { time: 0, sessions: hops.len() as u32 });
    }

    let mut frames = stream.frames().iter().peekable();
    let mut t: Time = 0;
    // Per-slot scratch shared by every stage (stages run sequentially
    // within a slot), allocated once for the whole run.
    let mut step = rts_core::ServerStep::default();
    let mut cstep = rts_core::ClientStep::default();
    let mut delivered: Vec<SentChunk> = Vec::new();
    let mut ready: Vec<Slice> = Vec::new();
    loop {
        let mut slot_sent: Bytes = 0;

        // Hop 0: source arrivals.
        let arrivals: &[_] = match frames.peek() {
            Some(f) if f.time == t => &frames.next().expect("peeked").slices,
            _ => &[],
        };
        origin.step_into_probed(t, arrivals, &mut step, &mut Tagged::new(probe, 0));
        report.hop_drops[0] += step.dropped.len() as u64;
        slot_sent += step.sent_bytes();
        links[0].submit(&step.sent);
        if probe.enabled() {
            for (hop, link) in links.iter().enumerate() {
                for kind in link.fault_events(t) {
                    probe.on_event(&Event::LinkFault { time: t, session: hop as u32, kind });
                }
            }
        }

        // Relays: deliveries from the previous link, reassembly, send.
        for (i, relay) in relays.iter_mut().enumerate() {
            delivered.clear();
            links[i].deliver_into(t, &mut delivered);
            ready.clear();
            relay.absorb_into(&delivered, &mut ready);
            relay
                .server
                .step_into_probed(t, &ready, &mut step, &mut Tagged::new(probe, i as u32 + 1));
            report.hop_drops[i + 1] += step.dropped.len() as u64;
            report.reassembly_peak[i + 1] = relay.reassembly_peak;
            slot_sent += step.sent_bytes();
            links[i + 1].submit(&step.sent);
        }

        // Client: deliveries from the last link. The chunk's `time` is
        // its send time on the *last* link; the client's deadline check
        // uses the total link delay, so re-express the chunk as if it
        // had traversed one link of that total delay.
        delivered.clear();
        links
            .last_mut()
            .expect("non-empty")
            .deliver_into(t, &mut delivered);
        for c in &mut delivered {
            c.time = t - total_link_delay.min(t);
        }
        client.step_into_probed(
            t,
            &delivered,
            &mut cstep,
            &mut Tagged::new(probe, hops.len() as u32 - 1),
        );
        for s in &cstep.played {
            report.benefit += s.weight;
            report.played_bytes += s.size;
            report.played_slices += 1;
        }
        report.client_drops += cstep.dropped.len() as u64;

        if probe.enabled() {
            let hop_occupancy = origin.buffer().occupancy()
                + relays
                    .iter()
                    .map(|r| r.server.buffer().occupancy())
                    .sum::<Bytes>();
            probe.on_event(&Event::SlotEnd {
                time: t,
                server_occupancy: hop_occupancy,
                client_occupancy: cstep.occupancy,
                link_bytes: slot_sent,
            });
        }

        let drained = t >= last_arrival
            && origin.is_drained()
            && links.iter().all(|l| l.is_empty())
            && relays
                .iter()
                .all(|r| r.server.is_drained() && r.partial.is_empty())
            && client.is_drained();
        if drained {
            break;
        }
        assert!(
            t <= horizon,
            "tandem failed to drain by {t} (horizon {horizon})"
        );
        t += 1;
    }
    if probe.enabled() {
        probe.on_event(&Event::RunEnd { time: t + 1, slots: t + 1 });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use rts_core::policy::{GreedyByteValue, TailDrop};
    use rts_core::tradeoff::SmoothingParams;
    use rts_stream::{InputStream, SliceSpec};

    fn unit_frames(counts: &[usize]) -> InputStream {
        InputStream::from_frames(
            counts
                .iter()
                .map(|&c| vec![SliceSpec::unit(); c])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn single_hop_tandem_matches_the_engine() {
        let stream = unit_frames(&[6, 0, 9, 2, 0, 0, 4]);
        let hop = HopConfig {
            buffer: 6,
            rate: 3,
            link_delay: 2,
        };
        let delay = tandem_delay(&[hop], 0);
        let tandem = simulate_tandem(&stream, &[hop], delay, |_| TailDrop::new());
        let params = SmoothingParams {
            buffer: hop.buffer,
            rate: hop.rate,
            delay,
            link_delay: hop.link_delay,
        };
        let single = simulate(&stream, SimConfig::new(params), TailDrop::new());
        assert_eq!(tandem.benefit, single.metrics.benefit);
        assert_eq!(tandem.played_bytes, single.metrics.played_bytes);
        assert_eq!(tandem.hop_drops[0], single.metrics.server_dropped_slices);
        assert_eq!(tandem.client_drops, 0);
    }

    #[test]
    fn generous_second_hop_adds_no_loss() {
        let stream = unit_frames(&[8, 0, 8, 0, 0, 8, 0, 0, 0]);
        let first = HopConfig {
            buffer: 6,
            rate: 3,
            link_delay: 1,
        };
        let second = HopConfig {
            buffer: 64,
            rate: 3, // same rate: whatever hop 0 passes, hop 1 carries
            link_delay: 2,
        };
        let delay = tandem_delay(&[first, second], 2);
        let two = simulate_tandem(&stream, &[first, second], delay, |_| TailDrop::new());
        let one = simulate_tandem(&stream, &[first], delay, |_| TailDrop::new());
        assert_eq!(two.benefit, one.benefit, "relay should be transparent");
        assert_eq!(two.hop_drops[1], 0);
        assert_eq!(two.client_drops, 0);
    }

    #[test]
    fn bottleneck_relay_drops_at_the_second_hop() {
        let stream = unit_frames(&[10, 10, 10, 10]);
        let hops = [
            HopConfig {
                buffer: 12,
                rate: 8,
                link_delay: 0,
            },
            HopConfig {
                buffer: 2,
                rate: 2,
                link_delay: 0,
            },
        ];
        let delay = tandem_delay(&hops, 2);
        let report = simulate_tandem(&stream, &hops, delay, |_| TailDrop::new());
        assert!(report.hop_drops[1] > 0, "{:?}", report.hop_drops);
        assert!(report.benefit < report.offered_weight);
    }

    #[test]
    fn conservation_across_hops() {
        let stream = unit_frames(&[9, 3, 0, 14, 0, 5]);
        let hops = [
            HopConfig {
                buffer: 5,
                rate: 3,
                link_delay: 1,
            },
            HopConfig {
                buffer: 4,
                rate: 2,
                link_delay: 2,
            },
            HopConfig {
                buffer: 4,
                rate: 2,
                link_delay: 0,
            },
        ];
        let delay = tandem_delay(&hops, 1);
        let report = simulate_tandem(&stream, &hops, delay, |_| GreedyByteValue::new());
        let accounted =
            report.played_slices + report.hop_drops.iter().sum::<u64>() + report.client_drops;
        assert_eq!(accounted, stream.slice_count() as u64);
    }

    #[test]
    fn variable_slices_reassemble_across_hops() {
        let mut b = InputStream::builder();
        b.frame(0, [SliceSpec::new(5, 50, rts_stream::FrameKind::I)]);
        b.frame(1, [SliceSpec::new(3, 3, rts_stream::FrameKind::B)]);
        let stream = b.build();
        let hops = [
            HopConfig {
                buffer: 8,
                rate: 2,
                link_delay: 1,
            },
            HopConfig {
                buffer: 8,
                rate: 2,
                link_delay: 1,
            },
        ];
        let delay = tandem_delay(&hops, 4);
        let report = simulate_tandem(&stream, &hops, delay, |_| GreedyByteValue::new());
        assert_eq!(report.played_bytes, 8, "{report:?}");
        assert!(report.reassembly_peak[1] > 0, "relay must have reassembled");
    }

    #[test]
    fn tandem_delay_accounts_every_hop() {
        let hops = [
            HopConfig {
                buffer: 10,
                rate: 3,
                link_delay: 1,
            },
            HopConfig {
                buffer: 6,
                rate: 2,
                link_delay: 1,
            },
        ];
        assert_eq!(tandem_delay(&hops, 2), 4 + 3 + 2);
    }

    #[test]
    fn probed_tandem_matches_and_tags_hops() {
        use rts_obs::{Collector, Event, Tee, VecProbe};
        let stream = unit_frames(&[9, 3, 0, 14, 0, 5]);
        let hops = [
            HopConfig { buffer: 5, rate: 3, link_delay: 1 },
            HopConfig { buffer: 4, rate: 2, link_delay: 0 },
        ];
        let delay = tandem_delay(&hops, 1);
        let plain = simulate_tandem(&stream, &hops, delay, |_| TailDrop::new());
        let mut probe = Tee(Collector::new(), VecProbe::new());
        let probed =
            simulate_tandem_probed(&stream, &hops, delay, |_| TailDrop::new(), &mut probe);
        assert_eq!(plain, probed, "probe must not perturb the run");
        let (collector, events) = (probe.0, probe.1.events);
        assert_eq!(collector.played_slices.get(), probed.played_slices);
        assert_eq!(collector.sessions, 2);
        // Both hops emitted admissions under their own tag.
        for hop in [0u32, 1] {
            assert!(
                events
                    .iter()
                    .any(|e| matches!(e, Event::SliceAdmitted { session, .. } if *session == hop)),
                "no admissions tagged for hop {hop}"
            );
        }
        // Playouts come from the client, tagged with the last hop.
        assert!(events
            .iter()
            .all(|e| !matches!(e, Event::SlicePlayed { session, .. } if *session != 1)));
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_tandem_rejected() {
        simulate_tandem(&unit_frames(&[1]), &[], 1, |_| TailDrop::new());
    }
}
