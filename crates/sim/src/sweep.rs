//! Parallel parameter sweeps.
//!
//! The figures of Section 5 are sweeps over buffer sizes and link rates,
//! with several policies per point. [`parallel_map`] fans the points out
//! over OS threads (`std::thread::scope` — no `'static` bounds needed),
//! preserving input order in the output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on a pool of `threads` workers (defaults to
/// the machine's available parallelism when `None`), returning results in
/// input order.
///
/// `f` must be `Sync` because multiple workers call it concurrently.
///
/// # Example
///
/// ```
/// let squares = rts_sim::parallel_map(&[1u64, 2, 3, 4], None, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], threads: Option<usize>, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let worker_count = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(items.len().max(1));

    if worker_count <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<U>>> = Mutex::new((0..items.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                results.lock().expect("no panics while holding lock")[i] = Some(out);
            });
        }
    });

    results
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .map(|o| o.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<u64> = (0..100).collect();
        let out = parallel_map(&input, Some(8), |&x| x + 1);
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(&[3, 1, 4], Some(1), |&x| x * 2);
        assert_eq!(out, vec![6, 2, 8]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], None, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(&[7u64], Some(32), |&x| x);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn borrows_environment() {
        let offset = 10u64;
        let out = parallel_map(&[1u64, 2], Some(2), |&x| x + offset);
        assert_eq!(out, vec![11, 12]);
    }
}
