//! Parallel parameter sweeps.
//!
//! The figures of Section 5 are sweeps over buffer sizes and link rates,
//! with several policies per point. [`parallel_map`] fans the points out
//! over OS threads (`std::thread::scope` — no `'static` bounds needed),
//! preserving input order in the output.

/// Applies `f` to every item on a pool of `threads` workers (defaults to
/// the machine's available parallelism when `None`), returning results in
/// input order.
///
/// The input is pre-split into one contiguous chunk per worker and each
/// worker writes into the matching disjoint slice of the output, so
/// result writes never contend on a shared lock.
///
/// `f` must be `Sync` because multiple workers call it concurrently.
///
/// # Example
///
/// ```
/// let squares = rts_sim::parallel_map(&[1u64, 2, 3, 4], None, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], threads: Option<usize>, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let worker_count = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(items.len().max(1));

    if worker_count <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }

    let chunk = items.len().div_ceil(worker_count);
    let mut results: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();

    std::thread::scope(|scope| {
        for (input, output) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(|| {
                for (item, slot) in input.iter().zip(output) {
                    *slot = Some(f(item));
                }
            });
        }
    });

    results
        .into_iter()
        .map(|o| o.expect("every slot was filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<u64> = (0..100).collect();
        let out = parallel_map(&input, Some(8), |&x| x + 1);
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn single_thread_fallback() {
        let out = parallel_map(&[3, 1, 4], Some(1), |&x| x * 2);
        assert_eq!(out, vec![6, 2, 8]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], None, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(&[7u64], Some(32), |&x| x);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn order_preserved_with_many_threads() {
        // More workers than cores, uneven chunk boundaries, and inputs
        // that finish at wildly different speeds: output order must
        // still match input order exactly.
        let input: Vec<u64> = (0..503).collect();
        for threads in [2, 3, 7, 16, 64] {
            let out = parallel_map(&input, Some(threads), |&x| {
                if x % 5 == 0 {
                    std::thread::yield_now();
                }
                x * 3
            });
            assert_eq!(out, input.iter().map(|&x| x * 3).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn absurd_thread_counts_are_clamped() {
        // `usize::MAX` workers must clamp to the item count rather than
        // panic on chunk-size arithmetic or spawn failures.
        let input: Vec<u64> = (0..9).collect();
        let out = parallel_map(&input, Some(usize::MAX), |&x| x + 100);
        assert_eq!(out, (100..109).collect::<Vec<u64>>());
    }

    #[test]
    fn borrows_environment() {
        let offset = 10u64;
        let out = parallel_map(&[1u64, 2], Some(2), |&x| x + offset);
        assert_eq!(out, vec![11, 12]);
    }
}
