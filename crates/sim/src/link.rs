//! The communication link: lossless, FIFO, constant per-byte delay `P`
//! (the 0-jitter abstraction of Section 2.2).
//!
//! Bytes submitted by the server at step `t` are delivered to the client
//! at step `t + P`: `R(t) = S(t − P)` (Lemma 3.3's premise).

use std::collections::VecDeque;

use rts_core::SentChunk;
use rts_obs::FaultKind;
use rts_stream::{Bytes, Time};

/// A communication channel between the server and the client.
///
/// The engine drives any `LinkModel` identically: chunks are submitted
/// in the step they leave the server and handed to the client in the
/// step [`deliver`](Self::deliver) releases them. Implementations must
/// preserve FIFO order (the paper's channels never reorder).
pub trait LinkModel {
    /// Accepts the chunks the server submitted this step, in FIFO
    /// order.
    fn submit(&mut self, chunks: &[SentChunk]);

    /// Releases every chunk due at time `t`, preserving FIFO order.
    fn deliver(&mut self, t: Time) -> Vec<SentChunk>;

    /// [`deliver`](Self::deliver) appending into a caller-held scratch
    /// vector instead of allocating. The default forwards to `deliver`;
    /// allocation-sensitive implementations should override it (the sim
    /// engines call this in their per-slot loop).
    fn deliver_into(&mut self, t: Time, out: &mut Vec<SentChunk>) {
        out.extend(self.deliver(t));
    }

    /// Bytes currently in flight.
    fn in_flight_bytes(&self) -> Bytes;

    /// Whether no data is in flight.
    fn is_empty(&self) -> bool;

    /// An upper bound on the per-chunk delay (used to size the
    /// simulation horizon and the client's playout point).
    fn worst_case_delay(&self) -> Time;

    /// Fault windows *opening* at slot `t`, for observability. The
    /// paper's ideal links never fault, so the default is none; a
    /// fault-injecting wrapper (`rts-faults`) overrides this and the
    /// engine forwards each kind as an
    /// [`Event::LinkFault`](rts_obs::Event::LinkFault).
    fn fault_events(&self, t: Time) -> Vec<FaultKind> {
        let _ = t;
        Vec::new()
    }
}

/// A constant-delay FIFO link.
#[derive(Debug, Clone)]
pub struct Link {
    delay: Time,
    in_flight: VecDeque<SentChunk>,
    in_flight_bytes: Bytes,
}

impl Link {
    /// Creates a link with propagation delay `delay` (`P`).
    pub fn new(delay: Time) -> Self {
        Link {
            delay,
            in_flight: VecDeque::new(),
            in_flight_bytes: 0,
        }
    }

    /// Propagation delay `P`.
    pub fn delay(&self) -> Time {
        self.delay
    }

    /// The chunks currently in flight, in FIFO submission order. A
    /// checkpoint walks this to serialize the pipe; restoring re-submits
    /// the same chunks with their original times.
    pub fn in_flight(&self) -> impl Iterator<Item = &SentChunk> {
        self.in_flight.iter()
    }
}

impl LinkModel for Link {
    /// Accepts the chunks the server submitted this step. Chunks must be
    /// submitted in non-decreasing `time` order (FIFO).
    fn submit(&mut self, chunks: &[SentChunk]) {
        for c in chunks {
            debug_assert!(
                self.in_flight.back().is_none_or(|b| b.time <= c.time),
                "link submissions must be FIFO in time"
            );
            self.in_flight_bytes += c.bytes;
            self.in_flight.push_back(*c);
        }
    }

    /// Delivers every chunk whose send time is `t − P`, preserving FIFO
    /// order.
    fn deliver(&mut self, t: Time) -> Vec<SentChunk> {
        let mut out = Vec::new();
        self.deliver_into(t, &mut out);
        out
    }

    fn deliver_into(&mut self, t: Time, out: &mut Vec<SentChunk>) {
        while let Some(front) = self.in_flight.front() {
            if front.time + self.delay > t {
                break;
            }
            debug_assert!(
                front.time + self.delay == t,
                "a chunk missed its delivery step (sent {}, delay {}, now {t})",
                front.time,
                self.delay
            );
            let c = self.in_flight.pop_front().expect("checked non-empty");
            self.in_flight_bytes -= c.bytes;
            out.push(c);
        }
    }

    fn in_flight_bytes(&self) -> Bytes {
        self.in_flight_bytes
    }

    fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    fn worst_case_delay(&self) -> Time {
        self.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rts_stream::{FrameKind, Slice, SliceId};

    fn chunk(id: u64, time: Time, bytes: Bytes) -> SentChunk {
        SentChunk {
            time,
            slice: Slice {
                id: SliceId(id),
                frame: 0,
                arrival: 0,
                size: bytes,
                weight: 1,
                kind: FrameKind::Generic,
            },
            bytes,
            completed: true,
        }
    }

    #[test]
    fn delivers_after_exactly_p_steps() {
        let mut link = Link::new(3);
        link.submit(&[chunk(0, 5, 2)]);
        assert!(link.deliver(6).is_empty());
        assert!(link.deliver(7).is_empty());
        let got = link.deliver(8);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].slice.id, SliceId(0));
        assert!(link.is_empty());
    }

    #[test]
    fn zero_delay_delivers_same_step() {
        let mut link = Link::new(0);
        link.submit(&[chunk(0, 2, 1)]);
        assert_eq!(link.deliver(2).len(), 1);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut link = Link::new(1);
        link.submit(&[chunk(0, 0, 1), chunk(1, 0, 1)]);
        link.submit(&[chunk(2, 1, 1)]);
        let first = link.deliver(1);
        assert_eq!(
            first.iter().map(|c| c.slice.id.0).collect::<Vec<_>>(),
            vec![0, 1]
        );
        let second = link.deliver(2);
        assert_eq!(second[0].slice.id, SliceId(2));
    }

    #[test]
    fn in_flight_accounting() {
        let mut link = Link::new(2);
        link.submit(&[chunk(0, 0, 3), chunk(1, 0, 4)]);
        assert_eq!(link.in_flight_bytes(), 7);
        link.deliver(2);
        assert_eq!(link.in_flight_bytes(), 0);
    }
}
