//! The end-to-end slotted-time engine: source → server buffer → link →
//! client buffer → playout, following the event order of Section 2.2.

use rts_core::tradeoff::SmoothingParams;
use rts_core::{
    BufferBacking, Client, ClientStep, ClockDrift, DropPolicy, ResyncPolicy, SentChunk, Server,
    ServerStep,
};
use rts_obs::{Event, NoopProbe, Probe};
use rts_stream::{Bytes, InputStream, Time};

use crate::link::{Link, LinkModel};
use crate::metrics::Metrics;
use crate::record::{Fate, ScheduleRecord, StepSample};

/// Simulation configuration: the smoothing parameters plus an optional
/// client-capacity override (defaults to `params.buffer`, the paper's
/// `Bc = B`; override it to reproduce the client-overflow effects of
/// Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Buffer / rate / delay / link-delay parameters.
    pub params: SmoothingParams,
    /// Client buffer capacity; `None` means `params.buffer`.
    pub client_capacity: Option<Bytes>,
    /// Graceful-degradation policy for the client: re-anchor the playout
    /// timer (instead of dropping late data) after delivery slips, e.g.
    /// across an injected outage. `None` keeps the paper's strict
    /// semantics.
    pub resync: Option<ResyncPolicy>,
    /// Deterministic client clock drift. `None` keeps the paper's
    /// synchronous slotted clock.
    pub drift: Option<ClockDrift>,
    /// Server-buffer backing store. The default [`BufferBacking::Ring`]
    /// is the fast path; [`BufferBacking::Map`] keeps the map-backed
    /// reference for differential tests and ablation benchmarks.
    pub backing: BufferBacking,
}

impl SimConfig {
    /// Configuration with `Bc = B` (the paper's standard setting).
    pub fn new(params: SmoothingParams) -> Self {
        SimConfig {
            params,
            client_capacity: None,
            resync: None,
            drift: None,
            backing: BufferBacking::default(),
        }
    }

    /// The effective client capacity.
    pub fn client_capacity(&self) -> Bytes {
        self.client_capacity.unwrap_or(self.params.buffer)
    }

    /// Returns the config with a client [`ResyncPolicy`] installed.
    pub fn with_resync(mut self, policy: ResyncPolicy) -> Self {
        self.resync = Some(policy);
        self
    }

    /// Returns the config with a client [`ClockDrift`] installed.
    pub fn with_drift(mut self, drift: ClockDrift) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Returns the config with the given server-buffer backing (the
    /// differential tests pin [`BufferBacking::Map`] here).
    pub fn with_backing(mut self, backing: BufferBacking) -> Self {
        self.backing = backing;
        self
    }
}

/// The outcome of a simulation: the full schedule record and aggregate
/// metrics.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The configuration that produced this schedule.
    pub config: SimConfig,
    /// Name of the drop policy used.
    pub policy: &'static str,
    /// Per-slice and per-step record (Definition 2.2 functions).
    pub record: ScheduleRecord,
    /// Aggregate metrics.
    pub metrics: Metrics,
}

/// Runs the generic algorithm end to end on `stream`.
///
/// The simulation continues past the last arrival until the server
/// buffer, the link, and the client buffer have all drained, so every
/// slice is resolved to a [`Fate`].
///
/// # Example
///
/// ```
/// use rts_core::policy::GreedyByteValue;
/// use rts_core::tradeoff::SmoothingParams;
/// use rts_sim::{simulate, SimConfig};
/// use rts_stream::{InputStream, SliceSpec};
///
/// let stream = InputStream::from_frames([vec![SliceSpec::unit(); 6], vec![]]);
/// let params = SmoothingParams::balanced_from_rate_delay(2, 2, 1);
/// let report = simulate(&stream, SimConfig::new(params), GreedyByteValue::new());
/// // B = R*D = 4: 2 sent immediately, 4 buffered, nothing dropped.
/// assert_eq!(report.metrics.played_bytes, 6);
/// assert_eq!(report.metrics.server_dropped_slices, 0);
/// ```
///
/// # Panics
///
/// Panics if the schedule fails to drain within a generous horizon
/// (`last arrival + P + D + total bytes / R + 4` steps) — impossible for
/// a work-conserving server unless a policy misbehaves.
pub fn simulate<P: DropPolicy>(stream: &InputStream, config: SimConfig, policy: P) -> SimReport {
    let link = Link::new(config.params.link_delay);
    simulate_with_link(stream, config, link, policy)
}

/// [`simulate`] with an observability probe: the run is bracketed by
/// [`Event::RunStart`]/[`Event::RunEnd`], every slice's admission, link
/// submission, drop, and playout is emitted as it happens, and each slot
/// closes with an [`Event::SlotEnd`] state sample. With a
/// [`NoopProbe`] this is exactly [`simulate`].
pub fn simulate_probed<P: DropPolicy, Pr: Probe>(
    stream: &InputStream,
    config: SimConfig,
    policy: P,
    probe: &mut Pr,
) -> SimReport {
    let link = Link::new(config.params.link_delay);
    simulate_with_link_probed(stream, config, link, policy, probe)
}

/// Runs the generic algorithm over an arbitrary [`LinkModel`] (e.g. a
/// [`JitteredLink`](crate::JitteredLink)).
///
/// The client's playout point is `AT + params.link_delay + D`, so
/// `params.link_delay` must be the delay bound the client assumes; with
/// a jitter-absorbing link that is `P + Jmax`
/// ([`LinkModel::worst_case_delay`]), with an uncontrolled jittery link
/// an optimistic client may assume less and lose late chunks.
///
/// # Panics
///
/// As [`simulate`]; additionally if the link's
/// [`worst_case_delay`](LinkModel::worst_case_delay) under-reports and
/// the schedule cannot drain.
pub fn simulate_with_link<P: DropPolicy, L: LinkModel>(
    stream: &InputStream,
    config: SimConfig,
    link: L,
    policy: P,
) -> SimReport {
    simulate_with_link_probed(stream, config, link, policy, &mut NoopProbe)
}

/// [`simulate_with_link`] with an observability probe (see
/// [`simulate_probed`] for the events emitted).
pub fn simulate_with_link_probed<P: DropPolicy, L: LinkModel, Pr: Probe>(
    stream: &InputStream,
    config: SimConfig,
    mut link: L,
    policy: P,
    probe: &mut Pr,
) -> SimReport {
    let params = config.params;
    let mut server = Server::with_backing(params.buffer, params.rate, policy, config.backing);
    let mut client = Client::new(config.client_capacity(), params.delay, params.link_delay);
    if let Some(policy) = config.resync {
        client = client.with_resync(policy);
    }
    if let Some(drift) = config.drift {
        client = client.with_drift(drift);
    }
    let mut record = ScheduleRecord::for_slices(stream.slices());
    let policy_name = server.policy_name();

    let last_arrival = stream.last_arrival().unwrap_or(0);
    let mut horizon = last_arrival
        + link.worst_case_delay().max(params.link_delay)
        + params.delay
        + stream.total_bytes() / params.rate
        + 4;
    // A resync offset delays playout by up to the absorbed skew; a slow
    // client clock stretches every deadline in wall time.
    if let Some(policy) = config.resync {
        horizon = horizon.saturating_add(policy.max_skew);
    }
    if let Some(drift) = config.drift {
        horizon = horizon.max(drift.wall_bound(horizon));
    }
    // Typical schedules drain well before the horizon; reserving the
    // drain-time estimate (not the full horizon) avoids reallocation in
    // the common case without over-committing memory.
    record.reserve_steps((last_arrival + params.delay + stream.total_bytes() / params.rate) as usize + 2);

    if probe.enabled() {
        probe.on_event(&Event::RunStart { time: 0, sessions: 1 });
    }

    let mut frames = stream.frames().iter().peekable();
    let mut t: Time = 0;
    // Per-slot scratch, allocated once and reused across the whole run.
    let mut sstep = ServerStep::default();
    let mut cstep = ClientStep::default();
    let mut delivered: Vec<SentChunk> = Vec::new();
    loop {
        // 1. Arrivals of this step enter the server.
        let arrivals: &[_] = match frames.peek() {
            Some(f) if f.time == t => {
                let f = frames.next().expect("peeked");
                &f.slices
            }
            _ => &[],
        };
        server.step_into_probed(t, arrivals, &mut sstep, probe);
        for d in &sstep.dropped {
            record.resolve(d.id, Fate::ServerDropped { time: t });
        }
        for c in &sstep.sent {
            record.note_send(c.slice.id, t, c.completed);
        }

        // 2. The link carries the submitted bytes; deliveries of step t.
        link.submit(&sstep.sent);
        delivered.clear();
        link.deliver_into(t, &mut delivered);
        if probe.enabled() {
            for kind in link.fault_events(t) {
                probe.on_event(&Event::LinkFault { time: t, session: 0, kind });
            }
        }

        // 3. The client absorbs deliveries and plays frame t - P - D.
        client.step_into_probed(t, &delivered, &mut cstep, probe);
        for s in &cstep.played {
            record.resolve(s.id, Fate::Played { playout: t });
        }
        for d in &cstep.dropped {
            record.resolve(
                d.slice.id,
                Fate::ClientDropped {
                    time: t,
                    reason: d.reason,
                },
            );
        }

        record.push_step(StepSample {
            time: t,
            server_occupancy: sstep.occupancy,
            client_occupancy: cstep.occupancy,
            client_peak: cstep.peak_occupancy,
            sent_bytes: sstep.sent_bytes(),
            link_in_flight: link.in_flight_bytes(),
        });
        if probe.enabled() {
            probe.on_event(&Event::SlotEnd {
                time: t,
                server_occupancy: sstep.occupancy,
                client_occupancy: cstep.occupancy,
                link_bytes: sstep.sent_bytes(),
            });
        }

        let done =
            t >= last_arrival && server.is_drained() && link.is_empty() && client.is_drained();
        if done {
            break;
        }
        assert!(
            t <= horizon,
            "schedule failed to drain by step {t} (horizon {horizon})"
        );
        t += 1;
    }

    if probe.enabled() {
        probe.on_event(&Event::RunEnd { time: t + 1, slots: t + 1 });
    }

    let metrics = Metrics::from_record(&record);
    SimReport {
        config,
        policy: policy_name,
        record,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rts_core::policy::{GreedyByteValue, TailDrop};
    use rts_core::ClientDropReason;
    use rts_stream::{FrameKind, SliceSpec};

    fn unit_frames(counts: &[usize]) -> InputStream {
        InputStream::from_frames(
            counts
                .iter()
                .map(|&c| vec![SliceSpec::unit(); c])
                .collect::<Vec<_>>(),
        )
    }

    fn balanced(rate: Bytes, delay: Time, p: Time) -> SimConfig {
        SimConfig::new(SmoothingParams::balanced_from_rate_delay(rate, delay, p))
    }

    #[test]
    fn lossless_when_buffer_suffices() {
        let stream = unit_frames(&[4, 0, 0, 0]);
        let report = simulate(&stream, balanced(1, 3, 2), TailDrop::new());
        assert_eq!(report.metrics.played_bytes, 4);
        assert_eq!(report.metrics.lost_bytes(), 0);
    }

    #[test]
    fn constant_sojourn_time_for_played_slices() {
        // Definition 2.5: a real-time schedule gives every played slice
        // the same sojourn time P + D.
        let stream = unit_frames(&[3, 5, 1, 0, 2]);
        let p = 2;
        let d = 3;
        let report = simulate(&stream, balanced(2, d, p), GreedyByteValue::new());
        for (r, playout) in report.record.played() {
            assert_eq!(playout - r.slice.arrival, p + d);
        }
        assert!(report.metrics.played_slices > 0);
    }

    #[test]
    fn overflow_losses_match_eq3() {
        // B = R*D = 2*1 = 2. Burst of 7: send 2, keep 2, drop 3.
        let stream = unit_frames(&[7]);
        let report = simulate(&stream, balanced(2, 1, 0), TailDrop::new());
        assert_eq!(report.metrics.server_dropped_slices, 3);
        assert_eq!(report.metrics.played_bytes, 4);
    }

    #[test]
    fn no_client_loss_when_balanced() {
        // Lemmas 3.3/3.4: with Bc = B = R*D the client never drops.
        let stream = unit_frames(&[9, 0, 6, 6, 0, 0, 11, 2]);
        let report = simulate(&stream, balanced(3, 2, 1), TailDrop::new());
        assert_eq!(report.metrics.client_dropped_slices, 0);
        assert!(report.metrics.client_occupancy_max <= 6);
    }

    #[test]
    fn underflow_when_delay_below_b_over_r() {
        // B=4, R=1, D=2 < B/R=4: some bytes arrive after their deadline.
        let params = SmoothingParams {
            buffer: 4,
            rate: 1,
            delay: 2,
            link_delay: 0,
        };
        let stream = unit_frames(&[4]);
        let report = simulate(&stream, SimConfig::new(params), TailDrop::new());
        let late = report
            .metrics
            .client_drop_reasons
            .get(&ClientDropReason::Late)
            .copied()
            .unwrap_or(0);
        assert!(late > 0, "expected late drops: {:?}", report.metrics);
        assert!(report.metrics.played_bytes < 4);
    }

    #[test]
    fn client_overflow_when_client_buffer_small() {
        // Server buffer ample, client buffer tiny: overflow at client.
        let params = SmoothingParams {
            buffer: 6,
            rate: 2,
            delay: 3,
            link_delay: 0,
        };
        let mut config = SimConfig::new(params);
        config.client_capacity = Some(1);
        let stream = unit_frames(&[6]);
        let report = simulate(&stream, config, TailDrop::new());
        let overflow = report
            .metrics
            .client_drop_reasons
            .get(&ClientDropReason::Overflow)
            .copied()
            .unwrap_or(0);
        assert!(overflow > 0);
    }

    #[test]
    fn every_slice_is_resolved() {
        let stream = unit_frames(&[5, 9, 0, 3, 12, 0, 0, 7]);
        let report = simulate(&stream, balanced(2, 2, 3), TailDrop::new());
        assert!(report.record.slices().iter().all(|r| r.fate.is_some()));
        assert_eq!(
            report.metrics.played_slices
                + report.metrics.server_dropped_slices
                + report.metrics.client_dropped_slices,
            stream.slice_count() as u64
        );
    }

    #[test]
    fn variable_slices_roundtrip() {
        let stream = InputStream::from_frames([
            vec![
                SliceSpec::new(5, 60, FrameKind::I),
                SliceSpec::new(2, 2, FrameKind::B),
            ],
            vec![SliceSpec::new(3, 24, FrameKind::P)],
            vec![],
        ]);
        let report = simulate(&stream, balanced(2, 3, 1), GreedyByteValue::new());
        assert_eq!(
            report.metrics.played_bytes + report.metrics.lost_bytes(),
            stream.total_bytes()
        );
    }

    #[test]
    fn empty_stream_terminates() {
        let stream = InputStream::builder().build();
        let report = simulate(&stream, balanced(1, 1, 0), TailDrop::new());
        assert_eq!(report.metrics.played_bytes, 0);
        assert_eq!(report.record.steps().len(), 1);
    }

    #[test]
    fn probed_run_matches_unprobed_metrics() {
        use rts_obs::Collector;
        let stream = unit_frames(&[7, 0, 9, 3, 0, 0, 5, 12]);
        let config = balanced(2, 2, 1);
        let plain = simulate(&stream, config, GreedyByteValue::new());
        let mut collector = Collector::new();
        let probed = simulate_probed(&stream, config, GreedyByteValue::new(), &mut collector);
        assert_eq!(plain.metrics, probed.metrics, "probe must not perturb the run");
        assert_eq!(collector.played_bytes.get(), probed.metrics.played_bytes);
        assert_eq!(collector.played_weight.get(), probed.metrics.benefit);
        assert_eq!(collector.admitted_bytes.get(), probed.metrics.offered_bytes);
        assert_eq!(
            collector.server_occupancy_max.max(),
            probed.metrics.server_occupancy_max
        );
        assert_eq!(collector.link_rate_max.max(), probed.metrics.link_rate_max);
        assert_eq!(
            collector.slots.get() as usize,
            probed.record.steps().len(),
            "one SlotEnd per recorded step"
        );
        assert!(collector.run_end.is_some());
    }

    #[test]
    fn report_carries_policy_and_config() {
        let stream = unit_frames(&[1]);
        let config = balanced(1, 1, 0);
        let report = simulate(&stream, config, TailDrop::new());
        assert_eq!(report.policy, "Tail-Drop");
        assert_eq!(report.config, config);
    }
}
