//! Links with positive jitter, and jitter control.
//!
//! The paper's analysis assumes a 0-jitter link (constant per-byte
//! delay `P`) and justifies it by assuming "some jitter control
//! algorithm is employed", noting that "such an algorithm adds to the
//! buffer space requirement and to overall delay" and leaving the
//! jittery case as the main open problem (Section 6).
//!
//! This module makes that discussion executable:
//!
//! * [`JitteredLink`] — a FIFO link whose per-chunk delay is
//!   `P + U` with `U` uniform in `[0, Jmax]` (monotonized so FIFO
//!   order is preserved, as any real FIFO channel does);
//! * [`JitterControl::Absorb`] — the classical jitter-control
//!   construction (Zhang, 1995): hold each arrival until
//!   `send time + P + Jmax`, re-creating a *constant*-delay link with
//!   `P' = P + Jmax`. The price is exactly what the paper predicts: up
//!   to `R · Jmax` extra buffering and `Jmax` extra latency — and in
//!   exchange every Section 3 guarantee applies verbatim with `P'` in
//!   place of `P`.
//!
//! The `jitter` experiment binary quantifies both sides; the
//! integration tests check that a controlled jittered run is
//! *byte-for-byte identical* to a constant-delay run at `P' = P + Jmax`.

use std::collections::VecDeque;

use rts_core::SentChunk;
use rts_stream::rng::SplitMix64;
use rts_stream::{Bytes, Time};

use crate::link::LinkModel;

/// Whether and how jitter is compensated at the receiving side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitterControl {
    /// No compensation: chunks reach the client whenever the network
    /// delivers them; anything later than the playout point is lost.
    None,
    /// Absorb jitter in a re-timing buffer: every chunk is released at
    /// exactly `send + P + Jmax`, making the effective link constant.
    Absorb,
}

/// A FIFO link with bounded random jitter.
#[derive(Debug, Clone)]
pub struct JitteredLink {
    base_delay: Time,
    jmax: Time,
    control: JitterControl,
    rng: SplitMix64,
    /// Chunks in flight with their (monotone) delivery times.
    in_flight: VecDeque<(Time, SentChunk)>,
    in_flight_bytes: Bytes,
    last_delivery: Time,
}

impl JitteredLink {
    /// Creates a link with base propagation delay `base_delay` (`P`),
    /// jitter bound `jmax`, the given control mode, and a PRNG seed.
    pub fn new(base_delay: Time, jmax: Time, control: JitterControl, seed: u64) -> Self {
        JitteredLink {
            base_delay,
            jmax,
            control,
            rng: SplitMix64::new(seed),
            in_flight: VecDeque::new(),
            in_flight_bytes: 0,
            last_delivery: 0,
        }
    }

    /// The jitter bound `Jmax`.
    pub fn jmax(&self) -> Time {
        self.jmax
    }

    /// The control mode.
    pub fn control(&self) -> JitterControl {
        self.control
    }
}

impl LinkModel for JitteredLink {
    fn submit(&mut self, chunks: &[SentChunk]) {
        for c in chunks {
            let delivery = match self.control {
                JitterControl::Absorb => c.time + self.base_delay + self.jmax,
                JitterControl::None => {
                    let u = if self.jmax == 0 {
                        0
                    } else {
                        self.rng.range_u64(0, self.jmax)
                    };
                    // FIFO channels cannot reorder: a chunk cannot
                    // overtake its predecessor.
                    (c.time + self.base_delay + u).max(self.last_delivery)
                }
            };
            self.last_delivery = delivery;
            self.in_flight_bytes += c.bytes;
            self.in_flight.push_back((delivery, *c));
        }
    }

    fn deliver(&mut self, t: Time) -> Vec<SentChunk> {
        let mut out = Vec::new();
        while let Some(&(due, _)) = self.in_flight.front() {
            if due > t {
                break;
            }
            let (_, c) = self.in_flight.pop_front().expect("checked non-empty");
            self.in_flight_bytes -= c.bytes;
            out.push(c);
        }
        out
    }

    fn in_flight_bytes(&self) -> Bytes {
        self.in_flight_bytes
    }

    fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    fn worst_case_delay(&self) -> Time {
        self.base_delay + self.jmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rts_stream::{FrameKind, Slice, SliceId};

    fn chunk(id: u64, time: Time) -> SentChunk {
        SentChunk {
            time,
            slice: Slice {
                id: SliceId(id),
                frame: 0,
                arrival: 0,
                size: 1,
                weight: 1,
                kind: FrameKind::Generic,
            },
            bytes: 1,
            completed: true,
        }
    }

    fn drain(link: &mut JitteredLink, until: Time) -> Vec<(Time, u64)> {
        (0..=until)
            .flat_map(|t| link.deliver(t).into_iter().map(move |c| (t, c.slice.id.0)))
            .collect()
    }

    #[test]
    fn absorb_mode_is_constant_delay_p_plus_jmax() {
        let mut link = JitteredLink::new(2, 3, JitterControl::Absorb, 1);
        link.submit(&[chunk(0, 0)]);
        link.submit(&[chunk(1, 4)]);
        let got = drain(&mut link, 20);
        assert_eq!(got, vec![(5, 0), (9, 1)]);
        assert!(link.is_empty());
    }

    #[test]
    fn uncontrolled_delays_stay_within_bounds_and_fifo() {
        let mut link = JitteredLink::new(2, 5, JitterControl::None, 7);
        for i in 0..50 {
            link.submit(&[chunk(i, i)]);
        }
        let got = drain(&mut link, 100);
        assert_eq!(got.len(), 50);
        let mut prev_t = 0;
        for (idx, &(t, id)) in got.iter().enumerate() {
            assert_eq!(id, idx as u64, "FIFO order preserved");
            assert!(t >= prev_t, "delivery times monotone");
            let sent = id;
            assert!(t >= sent + 2, "below base delay");
            // FIFO monotonization can only increase a delay bounded by
            // a predecessor's, which is itself within bounds.
            assert!(t <= sent + 2 + 5, "beyond base + jmax");
            prev_t = t;
        }
    }

    #[test]
    fn zero_jitter_uncontrolled_is_constant() {
        let mut link = JitteredLink::new(3, 0, JitterControl::None, 9);
        link.submit(&[chunk(0, 1)]);
        assert_eq!(drain(&mut link, 10), vec![(4, 0)]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = JitteredLink::new(1, 4, JitterControl::None, 42);
        let mut b = JitteredLink::new(1, 4, JitterControl::None, 42);
        for i in 0..20 {
            a.submit(&[chunk(i, i)]);
            b.submit(&[chunk(i, i)]);
        }
        assert_eq!(drain(&mut a, 40), drain(&mut b, 40));
    }

    #[test]
    fn in_flight_accounting() {
        let mut link = JitteredLink::new(2, 2, JitterControl::Absorb, 0);
        link.submit(&[chunk(0, 0), chunk(1, 0)]);
        assert_eq!(link.in_flight_bytes(), 2);
        drain(&mut link, 10);
        assert_eq!(link.in_flight_bytes(), 0);
        assert_eq!(link.worst_case_delay(), 4);
    }
}
