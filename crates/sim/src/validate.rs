//! Schedule validation: mechanical checks of the paper's definitions and
//! lemmas against a simulated schedule.
//!
//! The validator is used by the integration and property tests to make
//! sure the engine *is* the model of Section 2: a valid report satisfies
//! Definitions 2.2–2.5 (causality, FIFO, constant link delay, constant
//! sojourn time) and the resource-requirement lemmas (3.2–3.4).

use rts_stream::Bytes;

use crate::engine::SimReport;
use crate::record::Fate;

/// Validates a report; returns the list of violations (empty = valid).
///
/// Checks, for every schedule:
///
/// 1. every slice has exactly one resolved fate;
/// 2. send causality: `first_send ≥ AT`, `last_send ≥ first_send`;
/// 3. Lemma 3.2: no byte is submitted later than `AT + ⌈B/R⌉`;
/// 4. FIFO: transmissions complete in arrival order;
/// 5. real-time property (Definition 2.5): every played slice has
///    sojourn time exactly `P + D`, and its last byte was delivered by
///    its playout time;
/// 6. resource requirements: `|Bs(t)| ≤ B`, `|S(t)| ≤ R`, end-of-step
///    `|Bc(t)| ≤ Bc` for all `t`;
/// 7. conservation: throughput plus losses equals the offered stream.
///
/// Additionally, when the configuration is balanced (`B = R·D`,
/// `Bc = B`), Lemmas 3.3/3.4 say the client never discards anything;
/// that too is enforced.
pub fn validate(report: &SimReport) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    let params = report.config.params;
    let (b, r) = (params.buffer, params.rate);
    let latency = params.playout_latency();
    let send_deadline_slack = b.div_ceil(r);

    let mut last_completed_send = None;
    let mut played_bytes: Bytes = 0;
    let mut lost_bytes: Bytes = 0;

    for rec in report.record.slices() {
        let s = rec.slice;
        let Some(fate) = rec.fate else {
            errs.push(format!("slice {} has no resolved fate", s.id));
            continue;
        };
        if let Some(first) = rec.first_send {
            if first < s.arrival {
                errs.push(format!(
                    "slice {} sent at {first} before arrival {}",
                    s.id, s.arrival
                ));
            }
        }
        if let (Some(first), Some(last)) = (rec.first_send, rec.last_send) {
            if last < first {
                errs.push(format!(
                    "slice {} last send {last} precedes first send {first}",
                    s.id
                ));
            }
            if last > s.arrival + send_deadline_slack {
                errs.push(format!(
                    "slice {} violates Lemma 3.2: last byte sent at {last}, arrival {}, B/R slack {send_deadline_slack}",
                    s.id, s.arrival
                ));
            }
            // FIFO completion order (slice ids are arrival order).
            if let Some((prev_id, prev_last)) = last_completed_send {
                if last < prev_last {
                    errs.push(format!(
                        "FIFO violation: slice {} completed at {last} before earlier slice {prev_id} ({prev_last})",
                        s.id
                    ));
                }
            }
            last_completed_send = Some((s.id, last));
        }
        match fate {
            Fate::Played { playout } => {
                played_bytes += s.size;
                if playout != s.arrival + latency {
                    errs.push(format!(
                        "slice {} sojourn {} differs from P + D = {latency}",
                        s.id,
                        playout - s.arrival
                    ));
                }
                match rec.last_send {
                    Some(last) => {
                        if last + params.link_delay > playout {
                            errs.push(format!(
                                "slice {} delivered at {} after its playout {playout}",
                                s.id,
                                last + params.link_delay
                            ));
                        }
                    }
                    None => errs.push(format!("slice {} played but never fully sent", s.id)),
                }
            }
            Fate::ServerDropped { time } => {
                lost_bytes += s.size;
                if time < s.arrival {
                    errs.push(format!("slice {} dropped at {time} before arrival", s.id));
                }
                if rec.first_send.is_some() {
                    errs.push(format!("slice {} dropped after transmission started", s.id));
                }
            }
            Fate::ClientDropped { time, .. } => {
                lost_bytes += s.size;
                if time < s.arrival {
                    errs.push(format!(
                        "slice {} client-dropped at {time} before arrival",
                        s.id
                    ));
                }
            }
        }
    }

    for step in report.record.steps() {
        if step.server_occupancy > b {
            errs.push(format!(
                "step {}: server occupancy {} exceeds B = {b}",
                step.time, step.server_occupancy
            ));
        }
        if step.sent_bytes > r {
            errs.push(format!(
                "step {}: sent {} bytes over a rate-{r} link",
                step.time, step.sent_bytes
            ));
        }
        let bc = report.config.client_capacity();
        if step.client_occupancy > bc {
            errs.push(format!(
                "step {}: client occupancy {} exceeds Bc = {bc}",
                step.time, step.client_occupancy
            ));
        }
    }

    let m = &report.metrics;
    if played_bytes != m.played_bytes || played_bytes + lost_bytes != m.offered_bytes {
        errs.push(format!(
            "conservation failure: played {played_bytes} + lost {lost_bytes} vs offered {}",
            m.offered_bytes
        ));
    }
    if let Err(e) = m.check_conservation() {
        errs.push(e.to_string());
    }
    if m.residual_bytes != 0 {
        errs.push(format!(
            "drained schedule left {} residual bytes unresolved",
            m.residual_bytes
        ));
    }

    // Balanced configurations: the client never discards (Lemmas 3.3/3.4).
    if params.is_balanced() && report.config.client_capacity() >= params.buffer {
        if m.client_dropped_slices > 0 {
            errs.push(format!(
                "balanced configuration but the client discarded {} slices",
                m.client_dropped_slices
            ));
        }
        if m.client_occupancy_max > params.buffer {
            errs.push(format!(
                "Lemma 3.4 violation: client occupancy {} exceeds B = {}",
                m.client_occupancy_max, params.buffer
            ));
        }
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use rts_core::policy::{GreedyByteValue, HeadDrop, RandomDrop, TailDrop};
    use rts_core::tradeoff::SmoothingParams;
    use rts_stream::gen::{MpegConfig, MpegSource};
    use rts_stream::slicing::Slicing;
    use rts_stream::weight::WeightAssignment;
    use rts_stream::{InputStream, SliceSpec};

    fn unit_frames(counts: &[usize]) -> InputStream {
        InputStream::from_frames(
            counts
                .iter()
                .map(|&c| vec![SliceSpec::unit(); c])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn balanced_unit_schedule_validates() {
        let stream = unit_frames(&[5, 0, 8, 2, 0, 0, 13, 1]);
        let params = SmoothingParams::balanced_from_rate_delay(3, 2, 2);
        let report = simulate(&stream, SimConfig::new(params), TailDrop::new());
        validate(&report).expect("balanced schedule must validate");
    }

    #[test]
    fn all_policies_validate_on_mpeg_trace() {
        let trace = MpegSource::new(MpegConfig::cnn_like(), 17).frames(120);
        let stream = trace.materialize(Slicing::WholeFrame, WeightAssignment::MPEG_12_8_1);
        let avg = stream.stats().rate_at(1.0);
        let params = SmoothingParams::balanced_from_rate_delay(avg, 5, 3);
        let config = SimConfig::new(params);
        for report in [
            simulate(&stream, config, TailDrop::new()),
            simulate(&stream, config, GreedyByteValue::new()),
            simulate(&stream, config, HeadDrop::new()),
            simulate(&stream, config, RandomDrop::new(7)),
        ] {
            validate(&report)
                .unwrap_or_else(|e| panic!("{} failed validation: {e:?}", report.policy));
        }
    }

    #[test]
    fn unbalanced_schedule_still_passes_structural_checks() {
        // D < B/R loses data at the client but breaks no structural
        // invariant except the balanced-only clauses (not applied here).
        let params = SmoothingParams {
            buffer: 6,
            rate: 1,
            delay: 2,
            link_delay: 0,
        };
        let stream = unit_frames(&[6, 0, 0]);
        let report = simulate(&stream, SimConfig::new(params), TailDrop::new());
        validate(&report).expect("structural checks should pass");
        assert!(report.metrics.client_dropped_slices > 0);
    }

    #[test]
    fn detects_fabricated_violation() {
        // Corrupt a report and check the validator notices.
        let stream = unit_frames(&[3]);
        let params = SmoothingParams::balanced_from_rate_delay(1, 3, 0);
        let mut report = simulate(&stream, SimConfig::new(params), TailDrop::new());
        report.metrics.played_bytes += 1; // break conservation
        let errs = validate(&report).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("conservation")));
    }
}
