//! End-to-end slotted-time simulator for real-time smoothing schedules.
//!
//! Wires the components of [`rts_core`] into the full system of the
//! paper's Figure 1 — source → server buffer → constant-delay FIFO link →
//! client buffer → playout device — and records the complete schedule
//! (the `ST`/`RT`/`PT`/`DT` functions of Definition 2.2) so that the
//! model's invariants can be checked mechanically.
//!
//! * [`simulate`] — run the generic algorithm with any drop policy;
//! * [`ScheduleRecord`] / [`Metrics`] — the per-slice record and the
//!   aggregate measures of Definition 2.4 and Section 5;
//! * [`validate()`](validate()) — Definitions 2.2–2.5 and Lemmas 3.2–3.4 as assertions;
//! * [`parallel_map`] — fan parameter sweeps out over threads.
//!
//! # Example
//!
//! ```
//! use rts_core::policy::{GreedyByteValue, TailDrop};
//! use rts_core::tradeoff::SmoothingParams;
//! use rts_sim::{simulate, validate, SimConfig};
//! use rts_stream::gen::{MpegConfig, MpegSource};
//! use rts_stream::slicing::Slicing;
//! use rts_stream::weight::WeightAssignment;
//!
//! let trace = MpegSource::new(MpegConfig::cnn_like(), 1).frames(100);
//! let stream = trace.materialize(Slicing::WholeFrame, WeightAssignment::MPEG_12_8_1);
//!
//! // Link at the average stream rate, 4 steps of smoothing delay.
//! let rate = stream.stats().rate_at(1.0);
//! let params = SmoothingParams::balanced_from_rate_delay(rate, 4, 2);
//!
//! let greedy = simulate(&stream, SimConfig::new(params), GreedyByteValue::new());
//! let tail = simulate(&stream, SimConfig::new(params), TailDrop::new());
//! validate(&greedy).unwrap();
//! validate(&tail).unwrap();
//! // Greedy never delivers less weight than Tail-Drop on MPEG traces.
//! assert!(greedy.metrics.benefit >= tail.metrics.benefit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod jitter;
mod link;
mod metrics;
mod record;
mod server_only;
mod summary;
mod sweep;
pub mod tandem;
pub mod validate;

pub use engine::{
    simulate, simulate_probed, simulate_with_link, simulate_with_link_probed, SimConfig, SimReport,
};
pub use jitter::{JitterControl, JitteredLink};
pub use link::{Link, LinkModel};
pub use metrics::{ConservationError, Metrics};
pub use record::{Fate, ScheduleRecord, SliceRecord, StepSample};
pub use server_only::{
    run_server_only, run_server_only_probed, run_server_with_rate_schedule, ServerRun,
};
pub use summary::Percentiles;
pub use sweep::parallel_map;
pub use tandem::{
    simulate_tandem, simulate_tandem_probed, simulate_tandem_with_links,
    simulate_tandem_with_links_probed, tandem_delay, HopConfig, TandemReport,
};
pub use validate::validate;
