//! Time-series summaries over a schedule's step samples.
//!
//! The maxima in [`Metrics`](crate::Metrics) are the paper's *resource
//! requirements* (Definition 2.4); deployments also care about typical
//! levels — a buffer provisioned at the 99.9th-percentile occupancy may
//! be far cheaper than one sized for the worst step. [`Percentiles`]
//! summarizes any per-step quantity of the [`ScheduleRecord`].

use rts_stream::Bytes;

use crate::record::{ScheduleRecord, StepSample};

/// Order statistics of a non-negative series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Percentiles {
    /// Smallest sample.
    pub min: Bytes,
    /// Median (50th percentile).
    pub p50: Bytes,
    /// 90th percentile.
    pub p90: Bytes,
    /// 99th percentile.
    pub p99: Bytes,
    /// Largest sample (the Definition 2.4 requirement).
    pub max: Bytes,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples.
    pub count: usize,
}

impl Percentiles {
    /// Computes order statistics over the samples (empty input yields
    /// all zeros).
    pub fn of(values: impl IntoIterator<Item = Bytes>) -> Percentiles {
        let mut v: Vec<Bytes> = values.into_iter().collect();
        if v.is_empty() {
            return Percentiles::default();
        }
        v.sort_unstable();
        let rank = |p: usize| v[(p * (v.len() - 1) + 50) / 100];
        Percentiles {
            min: v[0],
            p50: rank(50),
            p90: rank(90),
            p99: rank(99),
            max: *v.last().expect("non-empty"),
            mean: v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64,
            count: v.len(),
        }
    }
}

impl ScheduleRecord {
    /// Order statistics of a per-step quantity, e.g.
    /// `record.step_percentiles(|s| s.server_occupancy)`.
    pub fn step_percentiles(&self, f: impl Fn(&StepSample) -> Bytes) -> Percentiles {
        Percentiles::of(self.steps().iter().map(f))
    }

    /// Server-occupancy order statistics (`|Bs(t)|` over the run).
    pub fn server_occupancy_summary(&self) -> Percentiles {
        self.step_percentiles(|s| s.server_occupancy)
    }

    /// Client-occupancy order statistics (`|Bc(t)|` over the run).
    pub fn client_occupancy_summary(&self) -> Percentiles {
        self.step_percentiles(|s| s.client_occupancy)
    }

    /// Link-utilization order statistics (`|S(t)|` over the run).
    pub fn link_usage_summary(&self) -> Percentiles {
        self.step_percentiles(|s| s.sent_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use rts_core::policy::TailDrop;
    use rts_core::tradeoff::SmoothingParams;
    use rts_stream::{InputStream, SliceSpec};

    #[test]
    fn percentiles_of_known_series() {
        let p = Percentiles::of(1..=100u64);
        assert_eq!(p.min, 1);
        // Nearest-rank at index round(0.5 * 99) = 50 → value 51.
        assert_eq!(p.p50, 51);
        assert_eq!(p.p90, 90);
        assert_eq!(p.p99, 99);
        assert_eq!(p.max, 100);
        assert!((p.mean - 50.5).abs() < 1e-12);
        assert_eq!(p.count, 100);
    }

    #[test]
    fn empty_series_is_all_zero() {
        assert_eq!(Percentiles::of(std::iter::empty()), Percentiles::default());
    }

    #[test]
    fn single_sample() {
        let p = Percentiles::of([7u64]);
        assert_eq!((p.min, p.p50, p.max, p.count), (7, 7, 7, 1));
    }

    #[test]
    fn summaries_from_a_schedule() {
        let stream = InputStream::from_frames([
            vec![SliceSpec::unit(); 6],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
        ]);
        let params = SmoothingParams::balanced_from_rate_delay(1, 5, 0);
        let report = simulate(&stream, SimConfig::new(params), TailDrop::new());
        let server = report.record.server_occupancy_summary();
        assert_eq!(server.max, report.metrics.server_occupancy_max);
        assert!(server.p50 <= server.p90 && server.p90 <= server.max);
        let link = report.record.link_usage_summary();
        assert_eq!(link.max, 1);
        let client = report.record.client_occupancy_summary();
        assert!(client.max <= params.buffer);
    }
}
