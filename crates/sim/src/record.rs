//! The full schedule record: the functions `ST`, `RT`, `PT`, `DT` of
//! Definition 2.2, materialized per slice, plus per-step occupancy
//! series. Everything the paper's definitions talk about can be checked
//! against this record (see [`validate`](crate::validate)).

use rts_core::ClientDropReason;
use rts_stream::{Bytes, Slice, SliceId, Time};

/// The final fate of a slice in a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Played out at the recorded time (`PT(s)`); sojourn time is
    /// `PT − AT`.
    Played {
        /// Playout time.
        playout: Time,
    },
    /// Dropped from the server's buffer (`DT(s)` finite, never sent).
    ServerDropped {
        /// Drop time.
        time: Time,
    },
    /// Discarded by the client.
    ClientDropped {
        /// Discard time.
        time: Time,
        /// Why the client discarded it.
        reason: ClientDropReason,
    },
}

impl Fate {
    /// Whether the slice was played out.
    pub fn is_played(&self) -> bool {
        matches!(self, Fate::Played { .. })
    }
}

/// Per-slice schedule entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceRecord {
    /// The slice (carries `AT`, size, weight, kind).
    pub slice: Slice,
    /// Send time of the slice's first byte, if any byte was sent.
    pub first_send: Option<Time>,
    /// Send time of the slice's last byte, if fully sent.
    pub last_send: Option<Time>,
    /// Resolved fate. `None` only transiently during simulation.
    pub fate: Option<Fate>,
}

/// Per-step occupancy and usage sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepSample {
    /// Time of the sample.
    pub time: Time,
    /// Server occupancy after the step (`|Bs(t)|`).
    pub server_occupancy: Bytes,
    /// Client occupancy after the step (`|Bc(t)|`).
    pub client_occupancy: Bytes,
    /// Client occupancy before playout (intra-step peak).
    pub client_peak: Bytes,
    /// Bytes submitted to the link this step (`|S(t)|`).
    pub sent_bytes: Bytes,
    /// Bytes in flight on the link after the step.
    pub link_in_flight: Bytes,
}

/// The complete record of one simulated schedule.
#[derive(Debug, Clone, Default)]
pub struct ScheduleRecord {
    slices: Vec<SliceRecord>,
    steps: Vec<StepSample>,
}

impl ScheduleRecord {
    /// Creates a record pre-populated with every slice of the stream (in
    /// id order), all unresolved.
    pub fn for_slices<'a>(slices: impl Iterator<Item = &'a Slice>) -> Self {
        ScheduleRecord {
            slices: slices
                .map(|&slice| SliceRecord {
                    slice,
                    first_send: None,
                    last_send: None,
                    fate: None,
                })
                .collect(),
            steps: Vec::new(),
        }
    }

    /// Reserves capacity for `n` more step samples. The engines call
    /// this with a horizon-derived hint so the steady-state loop never
    /// reallocates the step series; the hint is capped internally, so a
    /// pathological horizon cannot balloon the reservation.
    pub fn reserve_steps(&mut self, n: usize) {
        // 1 Mi samples ≈ 48 MiB — far beyond any committed experiment,
        // close enough to skip for the ones that do exceed it.
        const CAP: usize = 1 << 20;
        self.steps.reserve(n.min(CAP));
    }

    /// All slice records, indexed by slice id.
    pub fn slices(&self) -> &[SliceRecord] {
        &self.slices
    }

    /// The per-step samples, in time order.
    pub fn steps(&self) -> &[StepSample] {
        &self.steps
    }

    /// Record of one slice.
    pub fn slice(&self, id: SliceId) -> &SliceRecord {
        &self.slices[id.index()]
    }

    pub(crate) fn note_send(&mut self, id: SliceId, time: Time, completed: bool) {
        let r = &mut self.slices[id.index()];
        if r.first_send.is_none() {
            r.first_send = Some(time);
        }
        if completed {
            debug_assert!(r.last_send.is_none(), "slice completed twice");
            r.last_send = Some(time);
        }
    }

    pub(crate) fn resolve(&mut self, id: SliceId, fate: Fate) {
        let r = &mut self.slices[id.index()];
        debug_assert!(r.fate.is_none(), "slice {id} resolved twice: {:?}", r.fate);
        r.fate = Some(fate);
    }

    pub(crate) fn push_step(&mut self, sample: StepSample) {
        debug_assert!(
            self.steps.last().is_none_or(|s| s.time + 1 == sample.time),
            "step samples must be consecutive"
        );
        self.steps.push(sample);
    }

    /// Iterates over played slices with their playout times.
    pub fn played(&self) -> impl Iterator<Item = (&SliceRecord, Time)> + '_ {
        self.slices.iter().filter_map(|r| match r.fate {
            Some(Fate::Played { playout }) => Some((r, playout)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rts_stream::{FrameKind, InputStream, SliceSpec};

    fn record() -> ScheduleRecord {
        let stream = InputStream::from_frames([
            vec![SliceSpec::new(2, 5, FrameKind::I)],
            vec![SliceSpec::unit()],
        ]);
        ScheduleRecord::for_slices(stream.slices())
    }

    #[test]
    fn prepopulated_unresolved() {
        let r = record();
        assert_eq!(r.slices().len(), 2);
        assert!(r.slices().iter().all(|s| s.fate.is_none()));
        assert_eq!(r.slice(SliceId(1)).slice.arrival, 1);
    }

    #[test]
    fn send_notes_first_and_last() {
        let mut r = record();
        r.note_send(SliceId(0), 3, false);
        r.note_send(SliceId(0), 4, true);
        let s = r.slice(SliceId(0));
        assert_eq!(s.first_send, Some(3));
        assert_eq!(s.last_send, Some(4));
    }

    #[test]
    fn resolve_and_played_iterator() {
        let mut r = record();
        r.resolve(SliceId(0), Fate::Played { playout: 9 });
        r.resolve(SliceId(1), Fate::ServerDropped { time: 1 });
        let played: Vec<_> = r.played().collect();
        assert_eq!(played.len(), 1);
        assert_eq!(played[0].1, 9);
        assert!(r.slice(SliceId(0)).fate.unwrap().is_played());
        assert!(!r.slice(SliceId(1)).fate.unwrap().is_played());
    }

    #[test]
    fn step_samples_accumulate() {
        let mut r = record();
        r.push_step(StepSample {
            time: 0,
            server_occupancy: 2,
            ..Default::default()
        });
        r.push_step(StepSample {
            time: 1,
            server_occupancy: 1,
            ..Default::default()
        });
        assert_eq!(r.steps().len(), 2);
        assert_eq!(r.steps()[1].server_occupancy, 1);
    }
}
