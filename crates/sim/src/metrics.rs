//! Aggregate metrics of a schedule (Definition 2.4 and the Section 5
//! measures).

use std::collections::BTreeMap;

use rts_core::ClientDropReason;
use rts_stream::{Bytes, FrameKind, Weight};

use crate::record::{Fate, ScheduleRecord};

/// Aggregate performance measures of a schedule.
///
/// *Throughput* is the total number of bytes played out (Definition 2.4);
/// *benefit* is the total weight of played slices (Definition 2.6);
/// *weighted loss* is the complement fraction the paper plots in
/// Figures 2–3 and 5–6.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Metrics {
    /// Bytes offered by the source.
    pub offered_bytes: Bytes,
    /// Weight offered by the source.
    pub offered_weight: Weight,
    /// Bytes played out (throughput).
    pub played_bytes: Bytes,
    /// Weight played out (benefit).
    pub benefit: Weight,
    /// Played slice count.
    pub played_slices: u64,
    /// Slices dropped at the server.
    pub server_dropped_slices: u64,
    /// Bytes dropped at the server.
    pub server_dropped_bytes: Bytes,
    /// Slices discarded by the client.
    pub client_dropped_slices: u64,
    /// Bytes discarded by the client.
    pub client_dropped_bytes: Bytes,
    /// Bytes of slices with no resolved fate (0 for a drained run).
    pub residual_bytes: Bytes,
    /// Client discard counts by reason.
    pub client_drop_reasons: BTreeMapReason,
    /// Offered weight per frame kind.
    pub offered_weight_by_kind: BTreeMap<FrameKind, Weight>,
    /// Played weight per frame kind.
    pub benefit_by_kind: BTreeMap<FrameKind, Weight>,
    /// Maximum server occupancy over the run (buffer requirement).
    pub server_occupancy_max: Bytes,
    /// Maximum end-of-step client occupancy (client buffer requirement).
    pub client_occupancy_max: Bytes,
    /// Maximum intra-step client occupancy (before playout).
    pub client_peak_max: Bytes,
    /// Maximum bytes submitted to the link in one step (link rate
    /// requirement).
    pub link_rate_max: Bytes,
    /// Maximum bytes in flight on the link.
    pub link_in_flight_max: Bytes,
}

/// Client drop counts keyed by reason.
pub type BTreeMapReason = BTreeMap<ClientDropReason, u64>;

/// A byte-conservation violation found by [`Metrics::check_conservation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConservationError {
    /// Bytes offered by the source.
    pub offered_bytes: Bytes,
    /// Bytes accounted for (played + server-dropped + client-dropped +
    /// residual).
    pub accounted_bytes: Bytes,
    /// `accounted − offered`: positive means double counting, negative
    /// means bytes vanished.
    pub delta: i128,
}

impl std::fmt::Display for ConservationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "byte conservation violated: accounted {} vs offered {} (delta {:+})",
            self.accounted_bytes, self.offered_bytes, self.delta
        )
    }
}

impl std::error::Error for ConservationError {}

impl Metrics {
    /// Computes metrics from a completed schedule record.
    pub fn from_record(record: &ScheduleRecord) -> Metrics {
        let mut m = Metrics::default();
        for r in record.slices() {
            m.offered_bytes += r.slice.size;
            m.offered_weight += r.slice.weight;
            *m.offered_weight_by_kind.entry(r.slice.kind).or_default() += r.slice.weight;
            match r.fate {
                Some(Fate::Played { .. }) => {
                    m.played_bytes += r.slice.size;
                    m.benefit += r.slice.weight;
                    m.played_slices += 1;
                    *m.benefit_by_kind.entry(r.slice.kind).or_default() += r.slice.weight;
                }
                Some(Fate::ServerDropped { .. }) => {
                    m.server_dropped_slices += 1;
                    m.server_dropped_bytes += r.slice.size;
                }
                Some(Fate::ClientDropped { reason, .. }) => {
                    m.client_dropped_slices += 1;
                    m.client_dropped_bytes += r.slice.size;
                    *m.client_drop_reasons.entry(reason).or_default() += 1;
                }
                None => {
                    m.residual_bytes += r.slice.size;
                }
            }
        }
        for s in record.steps() {
            m.server_occupancy_max = m.server_occupancy_max.max(s.server_occupancy);
            m.client_occupancy_max = m.client_occupancy_max.max(s.client_occupancy);
            m.client_peak_max = m.client_peak_max.max(s.client_peak);
            m.link_rate_max = m.link_rate_max.max(s.sent_bytes);
            m.link_in_flight_max = m.link_in_flight_max.max(s.link_in_flight);
        }
        m
    }

    /// Byte-conservation self-check: every offered byte must be
    /// accounted for exactly once as played, server-dropped,
    /// client-dropped, or residual (unresolved). A violation means an
    /// accounting bug — a slice resolved twice, or a counter drifting
    /// from the record — and is returned with the offending delta.
    pub fn check_conservation(&self) -> Result<(), ConservationError> {
        let accounted = self.played_bytes
            + self.server_dropped_bytes
            + self.client_dropped_bytes
            + self.residual_bytes;
        if accounted == self.offered_bytes {
            Ok(())
        } else {
            Err(ConservationError {
                offered_bytes: self.offered_bytes,
                accounted_bytes: accounted,
                delta: accounted as i128 - self.offered_bytes as i128,
            })
        }
    }

    /// Bytes not played out.
    pub fn lost_bytes(&self) -> Bytes {
        self.offered_bytes - self.played_bytes
    }

    /// Weight not played out.
    pub fn lost_weight(&self) -> Weight {
        self.offered_weight - self.benefit
    }

    /// Fraction of offered weight lost, in `[0, 1]` — the paper's
    /// "weighted loss" (Figures 2, 3, 5, 6). Zero for an empty stream.
    pub fn weighted_loss(&self) -> f64 {
        if self.offered_weight == 0 {
            0.0
        } else {
            self.lost_weight() as f64 / self.offered_weight as f64
        }
    }

    /// Fraction of offered weight delivered, in `[0, 1]` — the paper's
    /// "benefit relative to total benefit" (Figure 4).
    pub fn benefit_fraction(&self) -> f64 {
        if self.offered_weight == 0 {
            1.0
        } else {
            self.benefit as f64 / self.offered_weight as f64
        }
    }

    /// Fraction of offered bytes lost (unweighted loss).
    pub fn byte_loss(&self) -> f64 {
        if self.offered_bytes == 0 {
            0.0
        } else {
            self.lost_bytes() as f64 / self.offered_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Fate, StepSample};
    use rts_stream::{InputStream, SliceSpec};

    fn resolved_record() -> ScheduleRecord {
        let stream = InputStream::from_frames([vec![
            SliceSpec::new(2, 24, FrameKind::I),
            SliceSpec::new(1, 1, FrameKind::B),
            SliceSpec::new(3, 24, FrameKind::P),
        ]]);
        let mut r = ScheduleRecord::for_slices(stream.slices());
        r.resolve(rts_stream::SliceId(0), Fate::Played { playout: 5 });
        r.resolve(rts_stream::SliceId(1), Fate::ServerDropped { time: 0 });
        r.resolve(
            rts_stream::SliceId(2),
            Fate::ClientDropped {
                time: 4,
                reason: ClientDropReason::Late,
            },
        );
        r.push_step(StepSample {
            time: 0,
            server_occupancy: 4,
            client_occupancy: 1,
            client_peak: 3,
            sent_bytes: 2,
            link_in_flight: 2,
        });
        r
    }

    #[test]
    fn aggregates_by_fate() {
        let m = Metrics::from_record(&resolved_record());
        assert_eq!(m.offered_bytes, 6);
        assert_eq!(m.offered_weight, 49);
        assert_eq!(m.played_bytes, 2);
        assert_eq!(m.benefit, 24);
        assert_eq!(m.played_slices, 1);
        assert_eq!(m.server_dropped_slices, 1);
        assert_eq!(m.server_dropped_bytes, 1);
        assert_eq!(m.client_dropped_slices, 1);
        assert_eq!(m.client_dropped_bytes, 3);
        assert_eq!(m.residual_bytes, 0);
        assert_eq!(m.client_drop_reasons[&ClientDropReason::Late], 1);
    }

    #[test]
    fn conservation_holds_on_resolved_records() {
        let m = Metrics::from_record(&resolved_record());
        m.check_conservation().expect("resolved record conserves bytes");
    }

    #[test]
    fn conservation_reports_the_delta() {
        let mut m = Metrics::from_record(&resolved_record());
        m.played_bytes += 2; // double count
        let err = m.check_conservation().unwrap_err();
        assert_eq!(err.delta, 2);
        assert_eq!(err.offered_bytes, 6);
        assert_eq!(err.accounted_bytes, 8);
        assert!(err.to_string().contains("+2"), "{err}");

        m.played_bytes -= 2;
        m.client_dropped_bytes -= 3; // vanish 3
        let err = m.check_conservation().unwrap_err();
        assert_eq!(err.delta, -3);
    }

    #[test]
    fn unresolved_slices_count_as_residual() {
        let stream = InputStream::from_frames([vec![SliceSpec::new(4, 1, FrameKind::Generic)]]);
        let r = ScheduleRecord::for_slices(stream.slices());
        let m = Metrics::from_record(&r);
        assert_eq!(m.residual_bytes, 4);
        m.check_conservation()
            .expect("residual bytes balance the conservation equation");
    }

    #[test]
    fn loss_fractions() {
        let m = Metrics::from_record(&resolved_record());
        assert_eq!(m.lost_bytes(), 4);
        assert_eq!(m.lost_weight(), 25);
        assert!((m.weighted_loss() - 25.0 / 49.0).abs() < 1e-12);
        assert!((m.benefit_fraction() - 24.0 / 49.0).abs() < 1e-12);
        assert!((m.byte_loss() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn per_kind_weights() {
        let m = Metrics::from_record(&resolved_record());
        assert_eq!(m.offered_weight_by_kind[&FrameKind::I], 24);
        assert_eq!(m.benefit_by_kind.get(&FrameKind::P), None);
        assert_eq!(m.benefit_by_kind[&FrameKind::I], 24);
    }

    #[test]
    fn step_maxima() {
        let m = Metrics::from_record(&resolved_record());
        assert_eq!(m.server_occupancy_max, 4);
        assert_eq!(m.client_occupancy_max, 1);
        assert_eq!(m.client_peak_max, 3);
        assert_eq!(m.link_rate_max, 2);
        assert_eq!(m.link_in_flight_max, 2);
    }

    #[test]
    fn empty_metrics_are_neutral() {
        let m = Metrics::default();
        assert_eq!(m.weighted_loss(), 0.0);
        assert_eq!(m.benefit_fraction(), 1.0);
        assert_eq!(m.byte_loss(), 0.0);
    }
}
