//! Local weight functions (Definition 2.6).

use crate::{Bytes, FrameKind, Weight};

/// A local weight function: assigns a weight to a slice from its kind and
/// size, independent of all other slices ("local" in the paper's sense).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightAssignment {
    /// Every slice has the same weight; benefit counts slices. With weight
    /// 1 and unit-size slices this is the unweighted model of Section 3.
    Uniform(Weight),
    /// The weight of a slice equals its size, so benefit equals
    /// throughput (the remark after Definition 2.6).
    BySize,
    /// Per-frame-kind weight *per byte* of the slice: a slice of size `n`
    /// in a kind-`k` frame gets weight `n * per_byte(k)`. With the paper's
    /// 12 : 8 : 1 values this makes a byte of an I-frame worth 12 whether
    /// slices are single bytes or whole frames, which is what makes the
    /// byte-slice and frame-slice experiments of Section 5 comparable.
    PerKindByte {
        /// Weight per byte of an I-frame slice.
        i: Weight,
        /// Weight per byte of a P-frame slice.
        p: Weight,
        /// Weight per byte of a B-frame slice.
        b: Weight,
        /// Weight per byte of a [`FrameKind::Generic`] slice.
        generic: Weight,
    },
}

impl WeightAssignment {
    /// The paper's Section 5 assignment: 12 : 8 : 1 per byte for I : P : B.
    pub const MPEG_12_8_1: WeightAssignment = WeightAssignment::PerKindByte {
        i: 12,
        p: 8,
        b: 1,
        generic: 1,
    };

    /// Weight assigned to a slice of the given kind and size.
    pub fn weight_of(&self, kind: FrameKind, size: Bytes) -> Weight {
        match *self {
            WeightAssignment::Uniform(w) => w,
            WeightAssignment::BySize => size,
            WeightAssignment::PerKindByte { i, p, b, generic } => {
                let per_byte = match kind {
                    FrameKind::I => i,
                    FrameKind::P => p,
                    FrameKind::B => b,
                    FrameKind::Generic => generic,
                };
                per_byte.saturating_mul(size)
            }
        }
    }

    /// Weight per byte (the byte value every slice of this kind gets,
    /// regardless of slicing granularity), as an exact pair `(num, den)`.
    pub fn byte_value_of(&self, kind: FrameKind, size: Bytes) -> (Weight, Bytes) {
        (self.weight_of(kind, size), size)
    }
}

impl Default for WeightAssignment {
    /// Defaults to the unweighted model (`Uniform(1)`).
    fn default() -> Self {
        WeightAssignment::Uniform(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ignores_kind_and_size() {
        let w = WeightAssignment::Uniform(5);
        assert_eq!(w.weight_of(FrameKind::I, 100), 5);
        assert_eq!(w.weight_of(FrameKind::B, 1), 5);
    }

    #[test]
    fn by_size_equals_size() {
        let w = WeightAssignment::BySize;
        assert_eq!(w.weight_of(FrameKind::P, 37), 37);
    }

    #[test]
    fn mpeg_12_8_1_scales_with_size() {
        let w = WeightAssignment::MPEG_12_8_1;
        assert_eq!(w.weight_of(FrameKind::I, 1), 12);
        assert_eq!(w.weight_of(FrameKind::I, 10), 120);
        assert_eq!(w.weight_of(FrameKind::P, 3), 24);
        assert_eq!(w.weight_of(FrameKind::B, 9), 9);
        assert_eq!(w.weight_of(FrameKind::Generic, 2), 2);
    }

    #[test]
    fn byte_value_is_granularity_invariant() {
        // A byte of an I frame is worth 12 whether the slice is 1 byte or
        // a whole 50-byte frame: w/s is 12/1 == 600/50.
        let w = WeightAssignment::MPEG_12_8_1;
        let (w1, s1) = w.byte_value_of(FrameKind::I, 1);
        let (w2, s2) = w.byte_value_of(FrameKind::I, 50);
        assert_eq!(w1 as u128 * s2 as u128, w2 as u128 * s1 as u128);
    }

    #[test]
    fn default_is_unweighted() {
        assert_eq!(WeightAssignment::default(), WeightAssignment::Uniform(1));
    }
}
