//! Merging streams: the substrate for multiplexing experiments.
//!
//! The paper's introduction lists *statistical multiplexing* as the
//! classical alternative to smoothing. Merging `K` independent streams
//! into one (their frames interleaved step by step) lets the
//! experiments measure the multiplexing gain directly: the merged
//! stream is burst-wise smoother than its parts, so smoothing the
//! aggregate needs less total rate than smoothing each part alone.

use crate::{InputStream, SliceId, SliceSpec, StreamBuilder, Time};

/// The result of merging several streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Merged {
    /// The merged stream (slice ids reassigned).
    pub stream: InputStream,
    /// For every merged slice id (dense), the index of the input stream
    /// it came from.
    pub origin: Vec<usize>,
}

impl Merged {
    /// The input-stream index a merged slice came from.
    pub fn origin_of(&self, id: SliceId) -> usize {
        self.origin[id.index()]
    }
}

/// Merges streams by aligning their time axes: the merged frame at time
/// `t` is the concatenation of every input's frame at `t` (inputs
/// listed in order).
///
/// Weights, sizes and kinds are preserved; slice ids are reassigned
/// densely (see [`Merged::origin`] to recover provenance).
pub fn merge(streams: &[InputStream]) -> Merged {
    let horizon: Time = streams.iter().map(|s| s.horizon()).max().unwrap_or(0);
    let mut builder = StreamBuilder::new();
    let mut origin = Vec::new();

    // Per-input cursor over its frames.
    let mut cursors: Vec<std::iter::Peekable<_>> = streams
        .iter()
        .map(|s| s.frames().iter().peekable())
        .collect();

    for t in 0..horizon {
        let mut specs: Vec<SliceSpec> = Vec::new();
        for (idx, cursor) in cursors.iter_mut().enumerate() {
            if let Some(f) = cursor.peek() {
                if f.time == t {
                    let f = cursor.next().expect("peeked");
                    for s in &f.slices {
                        specs.push(SliceSpec::new(s.size, s.weight, s.kind));
                        origin.push(idx);
                    }
                }
            }
        }
        builder.frame(t, specs);
    }

    Merged {
        stream: builder.build(),
        origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrameKind, InputStream};

    fn stream(frames: &[&[(u64, u64)]]) -> InputStream {
        InputStream::from_frames(frames.iter().map(|fs| {
            fs.iter()
                .map(|&(size, weight)| SliceSpec::new(size, weight, FrameKind::Generic))
                .collect::<Vec<_>>()
        }))
    }

    #[test]
    fn merge_preserves_totals() {
        let a = stream(&[&[(2, 5)], &[(1, 1)]]);
        let b = stream(&[&[(3, 9)], &[], &[(1, 2)]]);
        let m = merge(&[a.clone(), b.clone()]);
        assert_eq!(m.stream.total_bytes(), a.total_bytes() + b.total_bytes());
        assert_eq!(m.stream.total_weight(), a.total_weight() + b.total_weight());
        assert_eq!(m.stream.horizon(), 3);
    }

    #[test]
    fn merge_tracks_origins() {
        let a = stream(&[&[(1, 1)]]);
        let b = stream(&[&[(1, 2), (1, 3)]]);
        let m = merge(&[a, b]);
        let origins: Vec<usize> = m.stream.slices().map(|s| m.origin_of(s.id)).collect();
        assert_eq!(origins, vec![0, 1, 1]);
    }

    #[test]
    fn merge_orders_inputs_within_a_frame() {
        let a = stream(&[&[(1, 10)]]);
        let b = stream(&[&[(1, 20)]]);
        let m = merge(&[a, b]);
        let weights: Vec<u64> = m.stream.slices().map(|s| s.weight).collect();
        assert_eq!(weights, vec![10, 20]);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let m = merge(&[]);
        assert_eq!(m.stream.total_bytes(), 0);
        assert!(m.origin.is_empty());
    }

    #[test]
    fn merge_single_stream_is_identity_up_to_padding() {
        let a = stream(&[&[(2, 5)], &[], &[(1, 1)]]);
        let m = merge(std::slice::from_ref(&a));
        assert_eq!(m.stream.total_bytes(), a.total_bytes());
        assert_eq!(m.stream.slice_count(), a.slice_count());
        // Same per-slice data in the same order.
        for (x, y) in a.slices().zip(m.stream.slices()) {
            assert_eq!((x.size, x.weight, x.arrival), (y.size, y.weight, y.arrival));
        }
    }

    #[test]
    fn merged_aggregate_is_smoother_than_parts() {
        // Two complementary on/off streams: each has peak 10, the
        // merged stream is perfectly flat at 10.
        let a = stream(&[&[(10, 10)], &[], &[(10, 10)], &[]]);
        let b = stream(&[&[], &[(10, 10)], &[], &[(10, 10)]]);
        let m = merge(&[a, b]);
        let sizes: Vec<u64> = m.stream.frames().iter().map(|f| f.bytes()).collect();
        assert_eq!(sizes, vec![10, 10, 10, 10]);
    }
}
