use std::error::Error;
use std::fmt;

/// Errors raised while constructing or parsing input streams.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StreamError {
    /// A slice was declared with size zero; Definition 2.1 requires every
    /// slice to contain at least one byte.
    EmptySlice {
        /// Arrival time of the offending slice.
        time: u64,
    },
    /// Frames must be added in strictly increasing arrival-time order.
    NonMonotonicTime {
        /// Arrival time of the previous frame.
        previous: u64,
        /// Arrival time of the offending frame.
        offending: u64,
    },
    /// A trace file line could not be parsed.
    Parse {
        /// 1-based line number within the trace text.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::EmptySlice { time } => {
                write!(f, "slice of size zero at time {time}")
            }
            StreamError::NonMonotonicTime {
                previous,
                offending,
            } => write!(
                f,
                "frame time {offending} does not exceed previous frame time {previous}"
            ),
            StreamError::Parse { line, message } => {
                write!(f, "trace parse error on line {line}: {message}")
            }
        }
    }
}

impl Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = StreamError::EmptySlice { time: 7 };
        assert_eq!(e.to_string(), "slice of size zero at time 7");
        let e = StreamError::NonMonotonicTime {
            previous: 5,
            offending: 5,
        };
        assert!(e.to_string().contains("does not exceed"));
        let e = StreamError::Parse {
            line: 3,
            message: "bad kind".into(),
        };
        assert!(e.to_string().starts_with("trace parse error on line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StreamError>();
    }
}
