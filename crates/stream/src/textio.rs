//! Plain-text trace format.
//!
//! A deliberately simple line format so traces can be diffed, versioned,
//! and produced by external tools:
//!
//! ```text
//! # anything after '#' is a comment
//! frame 0
//! slice 3 12 I
//! slice 1 1 B
//! frame 2
//! ```
//!
//! `frame <time>` opens a frame; each following `slice <size> <weight>
//! <kind-letter>` belongs to it. Empty frames are legal and preserved.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), rts_stream::StreamError> {
//! use rts_stream::{textio, FrameKind, InputStream, SliceSpec};
//!
//! let stream = InputStream::from_frames([[SliceSpec::new(2, 8, FrameKind::P)]]);
//! let text = textio::write_stream(&stream);
//! let back = textio::parse_stream(&text)?;
//! assert_eq!(stream, back);
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use crate::{FrameKind, InputStream, SliceSpec, StreamBuilder, StreamError, Time};

/// Serializes a stream to the text format.
pub fn write_stream(stream: &InputStream) -> String {
    let mut out = String::new();
    out.push_str("# rts-stream trace v1\n");
    for frame in stream.frames() {
        let _ = writeln!(out, "frame {}", frame.time);
        for s in &frame.slices {
            let _ = writeln!(out, "slice {} {} {}", s.size, s.weight, s.kind.letter());
        }
    }
    out
}

/// Parses the text format back into a stream.
///
/// # Errors
///
/// Returns [`StreamError::Parse`] for malformed lines,
/// [`StreamError::NonMonotonicTime`] for out-of-order frames, and
/// [`StreamError::EmptySlice`] for zero-size slices.
pub fn parse_stream(text: &str) -> Result<InputStream, StreamError> {
    // Editors on some platforms prepend a UTF-8 byte-order mark; without
    // stripping it the first record reads as `'\u{feff}frame'`.
    let text = strip_bom(text);
    let mut builder = StreamBuilder::new();
    let mut current: Option<(Time, Vec<SliceSpec>)> = None;

    let flush = |builder: &mut StreamBuilder,
                 current: &mut Option<(Time, Vec<SliceSpec>)>|
     -> Result<(), StreamError> {
        if let Some((time, specs)) = current.take() {
            builder.try_frame(time, specs)?;
        }
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("frame") => {
                flush(&mut builder, &mut current)?;
                let time = parse_field(parts.next(), line_no, "frame time")?;
                if parts.next().is_some() {
                    return Err(parse_err(line_no, "trailing tokens after frame time"));
                }
                current = Some((time, Vec::new()));
            }
            Some("slice") => {
                let Some((_, specs)) = current.as_mut() else {
                    return Err(parse_err(line_no, "slice before any frame"));
                };
                let size = parse_field(parts.next(), line_no, "slice size")?;
                let weight = parse_field(parts.next(), line_no, "slice weight")?;
                let kind = match parts.next() {
                    Some(tok) if tok.chars().count() == 1 => {
                        FrameKind::from_letter(tok.chars().next().expect("one char"))
                            .ok_or_else(|| parse_err(line_no, "unknown frame kind"))?
                    }
                    Some(_) => return Err(parse_err(line_no, "frame kind must be one letter")),
                    None => return Err(parse_err(line_no, "missing frame kind")),
                };
                if parts.next().is_some() {
                    return Err(parse_err(line_no, "trailing tokens after slice"));
                }
                specs.push(SliceSpec::new(size, weight, kind));
            }
            Some(other) => {
                return Err(parse_err(line_no, &format!("unknown record '{other}'")));
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    flush(&mut builder, &mut current)?;
    Ok(builder.build())
}

/// Parses a raw frame-size listing: one frame per line, either
/// `<size>` or `<kind-letter> <size>` (the format in which published
/// VBR video traces — e.g. the classic Bellcore/"Star Wars" MPEG
/// traces — circulate). `#` comments and blank lines are ignored.
/// Line `i` (0-based among data lines) becomes the frame at time `i`.
///
/// # Errors
///
/// Returns [`StreamError::Parse`] for malformed lines.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), rts_stream::StreamError> {
/// let trace = rts_stream::textio::parse_frame_sizes("I 120\n38\nB 12\n")?;
/// assert_eq!(trace.total_bytes(), 170);
/// # Ok(())
/// # }
/// ```
pub fn parse_frame_sizes(text: &str) -> Result<crate::slicing::FrameSizeTrace, StreamError> {
    let text = strip_bom(text);
    let mut frames = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().expect("non-empty line has a token");
        let (kind, size_tok) = match first.parse::<u64>() {
            Ok(_) => (FrameKind::Generic, first),
            Err(_) => {
                let kind = (first.chars().count() == 1)
                    .then(|| FrameKind::from_letter(first.chars().next().expect("one char")))
                    .flatten()
                    .ok_or_else(|| parse_err(line_no, "expected a size or a kind letter"))?;
                let tok = parts
                    .next()
                    .ok_or_else(|| parse_err(line_no, "missing frame size"))?;
                (kind, tok)
            }
        };
        let size = size_tok
            .parse::<u64>()
            .map_err(|_| parse_err(line_no, &format!("invalid frame size '{size_tok}'")))?;
        if parts.next().is_some() {
            return Err(parse_err(line_no, "trailing tokens after frame size"));
        }
        frames.push((kind, size));
    }
    Ok(crate::slicing::FrameSizeTrace::new(frames))
}

/// Serializes a frame-size trace in the format accepted by
/// [`parse_frame_sizes`].
pub fn write_frame_sizes(trace: &crate::slicing::FrameSizeTrace) -> String {
    let mut out = String::new();
    out.push_str("# frame sizes: <kind-letter> <size>\n");
    for &(kind, size) in trace.frames() {
        let _ = writeln!(out, "{} {}", kind.letter(), size);
    }
    out
}

/// Drops a single leading UTF-8 byte-order mark, if present.
fn strip_bom(text: &str) -> &str {
    text.strip_prefix('\u{feff}').unwrap_or(text)
}

fn parse_field(tok: Option<&str>, line: usize, what: &str) -> Result<u64, StreamError> {
    let tok = tok.ok_or_else(|| parse_err(line, &format!("missing {what}")))?;
    tok.parse::<u64>()
        .map_err(|_| parse_err(line, &format!("invalid {what} '{tok}'")))
}

fn parse_err(line: usize, message: &str) -> StreamError {
    StreamError::Parse {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SliceSpec;

    fn sample() -> InputStream {
        let mut b = InputStream::builder();
        b.frame(
            0,
            [
                SliceSpec::new(3, 12, FrameKind::I),
                SliceSpec::new(1, 1, FrameKind::B),
            ],
        );
        b.frame(2, []);
        b.frame(5, [SliceSpec::new(2, 8, FrameKind::P)]);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_stream() {
        let s = sample();
        let text = write_stream(&s);
        let back = parse_stream(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn roundtrip_empty_stream() {
        let s = InputStream::builder().build();
        assert_eq!(parse_stream(&write_stream(&s)).unwrap(), s);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# header\nframe 0  # inline comment\nslice 1 5 G\n\n";
        let s = parse_stream(text).unwrap();
        assert_eq!(s.slice_count(), 1);
        assert_eq!(s.slices().next().unwrap().weight, 5);
    }

    #[test]
    fn bom_and_crlf_traces_roundtrip() {
        let s = sample();
        // A trace saved by a BOM-writing editor with Windows line
        // endings must parse back to the identical stream.
        let text = format!("\u{feff}{}", write_stream(&s).replace('\n', "\r\n"));
        assert_eq!(parse_stream(&text).unwrap(), s);
        // The BOM is consumed exactly once — a BOM mid-file is still an
        // error, and a bare BOM is an empty trace.
        assert!(parse_stream("frame 0\n\u{feff}frame 1\n").is_err());
        assert_eq!(parse_stream("\u{feff}").unwrap(), InputStream::builder().build());
    }

    #[test]
    fn frame_sizes_bom_and_crlf() {
        let t = parse_frame_sizes("\u{feff}I 120\r\n38\r\nB 12\r\n").unwrap();
        assert_eq!(t.frames()[0], (FrameKind::I, 120));
        assert_eq!(t.total_bytes(), 170);
        let back = parse_frame_sizes(&write_frame_sizes(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn slice_before_frame_is_an_error() {
        let err = parse_stream("slice 1 1 G").unwrap_err();
        assert!(matches!(err, StreamError::Parse { line: 1, .. }));
    }

    #[test]
    fn bad_kind_is_an_error() {
        let err = parse_stream("frame 0\nslice 1 1 Z").unwrap_err();
        assert!(matches!(err, StreamError::Parse { line: 2, .. }));
    }

    #[test]
    fn bad_number_is_an_error() {
        let err = parse_stream("frame zero").unwrap_err();
        assert!(err.to_string().contains("invalid frame time"));
    }

    #[test]
    fn trailing_tokens_are_errors() {
        assert!(parse_stream("frame 0 1").is_err());
        assert!(parse_stream("frame 0\nslice 1 1 G extra").is_err());
    }

    #[test]
    fn unknown_record_is_an_error() {
        let err = parse_stream("bogus 1").unwrap_err();
        assert!(err.to_string().contains("unknown record 'bogus'"));
    }

    #[test]
    fn out_of_order_frames_rejected() {
        let err = parse_stream("frame 5\nframe 3").unwrap_err();
        assert!(matches!(err, StreamError::NonMonotonicTime { .. }));
    }

    #[test]
    fn zero_size_slice_rejected() {
        let err = parse_stream("frame 0\nslice 0 1 G").unwrap_err();
        assert!(matches!(err, StreamError::EmptySlice { time: 0 }));
    }

    #[test]
    fn frame_sizes_bare_numbers() {
        let t = parse_frame_sizes("10\n20\n\n# comment\n30\n").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_bytes(), 60);
        assert!(t.frames().iter().all(|&(k, _)| k == FrameKind::Generic));
    }

    #[test]
    fn frame_sizes_with_kinds() {
        let t = parse_frame_sizes("I 120\nP 50  # inline\nB 12\n").unwrap();
        assert_eq!(t.frames()[0], (FrameKind::I, 120));
        assert_eq!(t.frames()[2], (FrameKind::B, 12));
    }

    #[test]
    fn frame_sizes_roundtrip() {
        let t = parse_frame_sizes("I 120\nG 38\nB 12\n").unwrap();
        let back = parse_frame_sizes(&write_frame_sizes(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn frame_sizes_zero_is_an_empty_slot() {
        let t = parse_frame_sizes("0\n5\n").unwrap();
        assert_eq!(t.frames()[0].1, 0);
    }

    #[test]
    fn frame_sizes_errors() {
        assert!(parse_frame_sizes("X 12").is_err()); // unknown kind
        assert!(parse_frame_sizes("I").is_err()); // missing size
        assert!(parse_frame_sizes("I twelve").is_err()); // bad number
        assert!(parse_frame_sizes("I 12 extra").is_err()); // trailing
        let err = parse_frame_sizes("ok\nI 1\nbogus line").unwrap_err();
        assert!(matches!(err, StreamError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_inputs_parse_to_the_empty_stream() {
        // Every flavour of "nothing": no bytes, newlines only, CRLF
        // only, comments only, and whitespace with a BOM.
        for text in ["", "\n", "\r\n\r\n", "# only a comment\n", "\u{feff}\r\n# hi\r\n", "   \n\t\n"] {
            let s = parse_stream(text)
                .unwrap_or_else(|e| panic!("empty-ish input {text:?} rejected: {e}"));
            assert_eq!(s, InputStream::builder().build(), "input {text:?}");
            assert_eq!(s.slice_count(), 0);
        }
    }

    #[test]
    fn single_slice_frames_roundtrip() {
        // The whole-frame slicing extreme: exactly one slice per frame.
        let mut b = InputStream::builder();
        b.frame(0, [SliceSpec::new(4, 9, FrameKind::I)]);
        b.frame(1, [SliceSpec::new(1, 1, FrameKind::B)]);
        b.frame(5, [SliceSpec::new(7, 0, FrameKind::P)]);
        let s = b.build();
        let back = parse_stream(&write_stream(&s)).unwrap();
        assert_eq!(back, s);
        assert!(back.frames().iter().all(|f| f.slices.len() == 1));
        // The time gap (frame 1 -> frame 5) survives the trip.
        assert_eq!(back.frames()[2].time, 5);
    }

    #[test]
    fn empty_frames_survive_the_roundtrip() {
        // A frame line with no following slices is a real (idle) frame,
        // not a parse artifact, and must not be collapsed.
        let mut b = InputStream::builder();
        b.frame(0, [SliceSpec::new(1, 1, FrameKind::Generic)]);
        b.frame(3, std::iter::empty::<SliceSpec>());
        b.frame(4, [SliceSpec::new(2, 2, FrameKind::Generic)]);
        let s = b.build();
        let back = parse_stream(&write_stream(&s)).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.frames().len(), 3);
        assert!(back.frames()[1].slices.is_empty());
    }

    #[test]
    fn maximal_slices_roundtrip_without_overflow() {
        // Lmax at the representation ceiling: u64::MAX sizes, weights,
        // and frame times must print and re-parse exactly.
        let mut b = InputStream::builder();
        b.frame(0, [SliceSpec::new(u64::MAX, u64::MAX, FrameKind::I)]);
        b.frame(u64::MAX, [SliceSpec::new(1, 0, FrameKind::Generic)]);
        let s = b.build();
        let back = parse_stream(&write_stream(&s)).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.frames()[0].slices[0].size, u64::MAX);
        assert_eq!(back.frames()[1].time, u64::MAX);
        // One past u64::MAX is a parse error, not a silent wrap.
        assert!(parse_stream("frame 0\nslice 18446744073709551616 1 G\n").is_err());
    }

    #[test]
    fn frame_sizes_empty_inputs() {
        for text in ["", "\r\n", "\u{feff}# nothing\n"] {
            let t = parse_frame_sizes(text)
                .unwrap_or_else(|e| panic!("empty-ish sizes {text:?} rejected: {e}"));
            assert_eq!(t.frames().len(), 0, "input {text:?}");
            assert_eq!(t.total_bytes(), 0);
        }
    }
}
