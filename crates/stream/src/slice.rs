use std::cmp::Ordering;
use std::fmt;

use crate::{Bytes, Time, Weight};

/// Unique identifier of a slice within one [`InputStream`](crate::InputStream).
///
/// Identifiers are assigned densely in arrival order (ties within a frame
/// follow declaration order), so they double as an index into
/// [`InputStream::slices`](crate::InputStream::slices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SliceId(pub u64);

impl SliceId {
    /// Returns the identifier as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u64> for SliceId {
    fn from(v: u64) -> Self {
        SliceId(v)
    }
}

/// The type of video frame a slice belongs to.
///
/// Section 5 of the paper assigns weights 12 : 8 : 1 to slices of
/// I : P : B frames. [`Generic`](FrameKind::Generic) covers non-video
/// streams (adversarial patterns, synthetic bursts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum FrameKind {
    /// Intra-coded frame (most valuable).
    I,
    /// Predicted frame.
    P,
    /// Bidirectionally predicted frame (least valuable).
    B,
    /// Not part of an MPEG structure.
    #[default]
    Generic,
}

impl FrameKind {
    /// All MPEG frame kinds, in decreasing importance.
    pub const MPEG: [FrameKind; 3] = [FrameKind::I, FrameKind::P, FrameKind::B];

    /// One-letter label used by the trace text format.
    pub fn letter(self) -> char {
        match self {
            FrameKind::I => 'I',
            FrameKind::P => 'P',
            FrameKind::B => 'B',
            FrameKind::Generic => 'G',
        }
    }

    /// Parses the one-letter label produced by [`letter`](Self::letter).
    pub fn from_letter(c: char) -> Option<FrameKind> {
        match c {
            'I' => Some(FrameKind::I),
            'P' => Some(FrameKind::P),
            'B' => Some(FrameKind::B),
            'G' => Some(FrameKind::Generic),
            _ => None,
        }
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A slice: the basic unit of data that can be dropped individually
/// (Definition 2.1). A slice has `size` abstract bytes, all arriving at
/// `arrival`, and carries a local weight (Definition 2.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slice {
    /// Stream-unique identifier (dense, arrival order).
    pub id: SliceId,
    /// Index of the frame this slice belongs to.
    pub frame: u64,
    /// Arrival time `AT(s)` at the server.
    pub arrival: Time,
    /// Size `|s| >= 1` in abstract bytes.
    pub size: Bytes,
    /// Local weight `w(s)`.
    pub weight: Weight,
    /// Frame kind (for per-kind loss accounting).
    pub kind: FrameKind,
}

impl Slice {
    /// Compares this slice's byte value `w(s)/|s|` with another slice's,
    /// exactly (no floating point). See [`byte_value_cmp`].
    #[inline]
    pub fn cmp_byte_value(&self, other: &Slice) -> Ordering {
        byte_value_cmp(self.weight, self.size, other.weight, other.size)
    }

    /// The byte value `w(s)/|s|` as a float, for reporting only.
    /// Algorithmic decisions use [`cmp_byte_value`](Self::cmp_byte_value).
    #[inline]
    pub fn byte_value(&self) -> f64 {
        self.weight as f64 / self.size as f64
    }
}

/// Compares two byte values `w1/s1` and `w2/s2` exactly via u128
/// cross-multiplication.
///
/// The greedy policy of Section 4.1 drops slices in increasing byte-value
/// order; using exact rational comparison keeps runs bit-reproducible.
///
/// # Panics
///
/// Panics in debug builds if a size is zero (sizes are validated at stream
/// construction, so this cannot occur for slices from an
/// [`InputStream`](crate::InputStream)).
#[inline]
pub fn byte_value_cmp(w1: Weight, s1: Bytes, w2: Weight, s2: Bytes) -> Ordering {
    debug_assert!(s1 > 0 && s2 > 0, "slice sizes must be positive");
    (w1 as u128 * s2 as u128).cmp(&(w2 as u128 * s1 as u128))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(id: u64, size: Bytes, weight: Weight) -> Slice {
        Slice {
            id: SliceId(id),
            frame: 0,
            arrival: 0,
            size,
            weight,
            kind: FrameKind::Generic,
        }
    }

    #[test]
    fn byte_value_exact_comparison() {
        // 1/3 < 2/5
        assert_eq!(byte_value_cmp(1, 3, 2, 5), Ordering::Less);
        // 2/4 == 1/2
        assert_eq!(byte_value_cmp(2, 4, 1, 2), Ordering::Equal);
        // 12/1 > 8/1
        assert_eq!(byte_value_cmp(12, 1, 8, 1), Ordering::Greater);
    }

    #[test]
    fn byte_value_no_overflow_at_u64_extremes() {
        assert_eq!(byte_value_cmp(u64::MAX, 1, u64::MAX, 2), Ordering::Greater);
        assert_eq!(byte_value_cmp(u64::MAX, u64::MAX, 1, 1), Ordering::Equal);
    }

    #[test]
    fn slice_cmp_byte_value_matches_free_function() {
        let a = slice(0, 3, 1);
        let b = slice(1, 5, 2);
        assert_eq!(a.cmp_byte_value(&b), Ordering::Less);
        assert_eq!(b.cmp_byte_value(&a), Ordering::Greater);
        assert_eq!(a.cmp_byte_value(&a), Ordering::Equal);
    }

    #[test]
    fn byte_value_float_for_reporting() {
        let s = slice(0, 4, 12);
        assert!((s.byte_value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn frame_kind_letters_roundtrip() {
        for k in [FrameKind::I, FrameKind::P, FrameKind::B, FrameKind::Generic] {
            assert_eq!(FrameKind::from_letter(k.letter()), Some(k));
        }
        assert_eq!(FrameKind::from_letter('x'), None);
    }

    #[test]
    fn slice_id_display_and_index() {
        assert_eq!(SliceId(17).to_string(), "s17");
        assert_eq!(SliceId(17).index(), 17);
        assert_eq!(SliceId::from(4), SliceId(4));
    }

    #[test]
    fn mpeg_kinds_in_decreasing_importance() {
        assert_eq!(FrameKind::MPEG, [FrameKind::I, FrameKind::P, FrameKind::B]);
    }
}
