//! Slicing policies: how a frame of raw bytes is partitioned into slices.
//!
//! Section 5 of the paper evaluates "two extremes for the slice size: on
//! one extreme, each byte is an individual slice; and on the other
//! extreme, each frame is an individual slice". [`Slicing`] captures both
//! plus a fixed-size middle ground (e.g. network packets).

use crate::weight::WeightAssignment;
use crate::{Bytes, FrameKind, InputStream, SliceSpec, StreamBuilder, Time};

/// How frame payloads are partitioned into individually droppable slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Slicing {
    /// Each byte is an individual slice (`Lmax = 1`; the model in which
    /// the generic algorithm is loss-optimal, Theorem 3.5).
    #[default]
    PerByte,
    /// Each frame is a single slice (`Lmax` = largest frame).
    WholeFrame,
    /// Frames are cut into chunks of at most the given size; the last
    /// chunk of a frame may be smaller.
    Chunks(Bytes),
}

impl Slicing {
    /// Splits one frame of `size` bytes into slice sizes.
    ///
    /// # Panics
    ///
    /// Panics if `Chunks(0)` is used.
    pub fn split(&self, size: Bytes) -> Vec<Bytes> {
        match *self {
            Slicing::PerByte => vec![1; size as usize],
            Slicing::WholeFrame => {
                if size == 0 {
                    vec![]
                } else {
                    vec![size]
                }
            }
            Slicing::Chunks(chunk) => {
                assert!(chunk > 0, "chunk size must be positive");
                let mut out = Vec::new();
                let mut rem = size;
                while rem > 0 {
                    let take = rem.min(chunk);
                    out.push(take);
                    rem -= take;
                }
                out
            }
        }
    }

    /// The largest slice this policy can produce from frames of at most
    /// `max_frame` bytes (the paper's `Lmax`).
    pub fn lmax(&self, max_frame: Bytes) -> Bytes {
        match *self {
            Slicing::PerByte => 1,
            Slicing::WholeFrame => max_frame.max(1),
            Slicing::Chunks(chunk) => chunk.min(max_frame.max(1)),
        }
    }
}

/// A sequence of raw frames — `(kind, size)` per time step — prior to
/// slicing and weighting. This is what trace generators produce; applying
/// a [`Slicing`] and a [`WeightAssignment`] yields an [`InputStream`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FrameSizeTrace {
    frames: Vec<(FrameKind, Bytes)>,
}

impl FrameSizeTrace {
    /// Creates a trace from per-step `(kind, size)` pairs; step `i`
    /// arrives at time `i`.
    pub fn new(frames: Vec<(FrameKind, Bytes)>) -> Self {
        FrameSizeTrace { frames }
    }

    /// The raw `(kind, size)` records.
    pub fn frames(&self) -> &[(FrameKind, Bytes)] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the trace has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total bytes across all frames.
    pub fn total_bytes(&self) -> Bytes {
        self.frames.iter().map(|&(_, b)| b).sum()
    }

    /// Largest frame in bytes.
    pub fn max_frame_bytes(&self) -> Bytes {
        self.frames.iter().map(|&(_, b)| b).max().unwrap_or(0)
    }

    /// Average bytes per frame.
    pub fn average_rate(&self) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.frames.len() as f64
        }
    }

    /// Materializes the trace into an [`InputStream`] under a slicing
    /// policy and weight assignment.
    ///
    /// With [`WeightAssignment::PerKindByte`] the *total* weight offered is
    /// independent of the slicing granularity, which is what makes the
    /// byte-slice and frame-slice curves of Figures 5–6 comparable.
    pub fn materialize(&self, slicing: Slicing, weights: WeightAssignment) -> InputStream {
        let mut b = StreamBuilder::new();
        for (t, &(kind, size)) in self.frames.iter().enumerate() {
            let specs: Vec<SliceSpec> = slicing
                .split(size)
                .into_iter()
                .map(|sz| SliceSpec::new(sz, weights.weight_of(kind, sz), kind))
                .collect();
            b.frame(t as Time, specs);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_byte_split() {
        assert_eq!(Slicing::PerByte.split(3), vec![1, 1, 1]);
        assert_eq!(Slicing::PerByte.split(0), Vec::<Bytes>::new());
    }

    #[test]
    fn whole_frame_split() {
        assert_eq!(Slicing::WholeFrame.split(7), vec![7]);
        assert_eq!(Slicing::WholeFrame.split(0), Vec::<Bytes>::new());
    }

    #[test]
    fn chunk_split_with_remainder() {
        assert_eq!(Slicing::Chunks(3).split(8), vec![3, 3, 2]);
        assert_eq!(Slicing::Chunks(10).split(8), vec![8]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        Slicing::Chunks(0).split(5);
    }

    #[test]
    fn lmax_per_policy() {
        assert_eq!(Slicing::PerByte.lmax(120), 1);
        assert_eq!(Slicing::WholeFrame.lmax(120), 120);
        assert_eq!(Slicing::Chunks(16).lmax(120), 16);
        assert_eq!(Slicing::Chunks(16).lmax(4), 4);
    }

    #[test]
    fn materialize_preserves_totals_across_granularity() {
        let trace = FrameSizeTrace::new(vec![
            (FrameKind::I, 5),
            (FrameKind::B, 3),
            (FrameKind::P, 4),
        ]);
        let w = WeightAssignment::MPEG_12_8_1;
        let by_byte = trace.materialize(Slicing::PerByte, w);
        let by_frame = trace.materialize(Slicing::WholeFrame, w);
        assert_eq!(by_byte.total_bytes(), by_frame.total_bytes());
        assert_eq!(by_byte.total_weight(), by_frame.total_weight());
        assert_eq!(by_byte.slice_count(), 12);
        assert_eq!(by_frame.slice_count(), 3);
    }

    #[test]
    fn materialize_timing() {
        let trace = FrameSizeTrace::new(vec![(FrameKind::Generic, 2), (FrameKind::Generic, 1)]);
        let s = trace.materialize(Slicing::WholeFrame, WeightAssignment::BySize);
        assert_eq!(s.frames()[0].time, 0);
        assert_eq!(s.frames()[1].time, 1);
        assert_eq!(s.frames()[1].slices[0].weight, 1);
    }

    #[test]
    fn trace_stats() {
        let trace = FrameSizeTrace::new(vec![(FrameKind::I, 10), (FrameKind::B, 2)]);
        assert_eq!(trace.total_bytes(), 12);
        assert_eq!(trace.max_frame_bytes(), 10);
        assert!((trace.average_rate() - 6.0).abs() < 1e-12);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert!(FrameSizeTrace::default().is_empty());
    }
}
