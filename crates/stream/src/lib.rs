//! Input-stream model for real-time smoothing schedules.
//!
//! This crate provides the data model of Mansour, Patt-Shamir and Lapid,
//! *"Optimal smoothing schedules for real-time streams"* (PODC 2000):
//! an input stream is a set of [`Slice`]s, each a block of abstract
//! equal-size "bytes" with an arrival time and a non-negative integer
//! weight (Definition 2.1 / 2.6 of the paper). Slices are grouped into
//! [`Frame`]s — the set of slices generated in one time step.
//!
//! Besides the model itself the crate ships:
//!
//! * [`gen`] — trace generators: a synthetic MPEG-like VBR source
//!   calibrated to the clip statistics reported in Section 5 of the paper,
//!   elementary sources (CBR, on/off bursts, uniform noise), and the
//!   adversarial arrival patterns used in Lemma 3.6 and Theorems 4.7/4.8;
//! * [`rng`] — a small deterministic PRNG (SplitMix64) so every generated
//!   trace is exactly reproducible from a `u64` seed;
//! * [`textio`] — a plain-text trace format for persisting streams;
//! * [`StreamStats`] — descriptive statistics (average rate, peak rate,
//!   largest frame/slice, per-kind histograms) used to parameterize the
//!   experiments.
//!
//! # Example
//!
//! ```
//! use rts_stream::{FrameKind, InputStream, SliceSpec};
//!
//! // Two frames: one at t=0 with two slices, one at t=1 with one slice.
//! let mut b = InputStream::builder();
//! b.frame(0, [SliceSpec::new(3, 12, FrameKind::I), SliceSpec::new(1, 1, FrameKind::B)]);
//! b.frame(1, [SliceSpec::new(2, 8, FrameKind::P)]);
//! let stream = b.build();
//!
//! assert_eq!(stream.total_bytes(), 6);
//! assert_eq!(stream.total_weight(), 21);
//! assert_eq!(stream.stats().max_frame_bytes, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod frame;
mod merge;
mod slice;
mod stats;
mod stream;
mod traceops;

pub mod gen;
pub mod rng;
pub mod slicing;
pub mod textio;
pub mod weight;

pub use error::StreamError;
pub use frame::Frame;
pub use merge::{merge, Merged};
pub use slice::{byte_value_cmp, FrameKind, Slice, SliceId};
pub use stats::StreamStats;
pub use stream::{InputStream, SliceSpec, StreamBuilder};
pub use weight::WeightAssignment;

/// Discrete time step (the paper's slotted-time model).
pub type Time = u64;

/// A count of abstract equal-size data units ("bytes" in the paper's
/// terminology; the experiments use 1 unit ≈ 1 KB).
pub type Bytes = u64;

/// A non-negative integer slice weight (the paper's local value function,
/// Definition 2.6). Real-valued weights can always be scaled to integers;
/// integer weights keep every algorithmic comparison exact.
pub type Weight = u64;
