use crate::stats::StreamStats;
use crate::{Bytes, Frame, FrameKind, Slice, SliceId, StreamError, Time, Weight};

/// Declarative description of one slice, used with [`StreamBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceSpec {
    /// Size in bytes (must be at least 1).
    pub size: Bytes,
    /// Local weight.
    pub weight: Weight,
    /// Frame kind.
    pub kind: FrameKind,
}

impl SliceSpec {
    /// Creates a slice specification.
    pub fn new(size: Bytes, weight: Weight, kind: FrameKind) -> Self {
        SliceSpec { size, weight, kind }
    }

    /// A unit-size slice whose weight equals 1 (the unweighted model of
    /// Section 3, where only slice counts matter).
    pub fn unit() -> Self {
        SliceSpec::new(1, 1, FrameKind::Generic)
    }

    /// A slice whose weight equals its size, so that benefit equals
    /// throughput (the remark after Definition 2.6).
    pub fn sized(size: Bytes, kind: FrameKind) -> Self {
        SliceSpec::new(size, size, kind)
    }
}

/// Incremental builder for [`InputStream`]; see
/// [`InputStream::builder`].
#[derive(Debug, Clone, Default)]
pub struct StreamBuilder {
    frames: Vec<Frame>,
    next_id: u64,
}

impl StreamBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a frame arriving at `time` with the given slices.
    ///
    /// Empty frames are allowed (a step with no arrivals) and may be used
    /// to extend the stream horizon.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not strictly greater than the previous frame's
    /// time, or if any slice has size 0. Use [`try_frame`](Self::try_frame)
    /// for a fallible variant.
    pub fn frame<I>(&mut self, time: Time, slices: I) -> &mut Self
    where
        I: IntoIterator<Item = SliceSpec>,
    {
        self.try_frame(time, slices)
            .expect("invalid frame passed to StreamBuilder::frame");
        self
    }

    /// Fallible variant of [`frame`](Self::frame).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::NonMonotonicTime`] if `time` does not exceed
    /// the previous frame's time, or [`StreamError::EmptySlice`] if any
    /// slice has size 0.
    pub fn try_frame<I>(&mut self, time: Time, slices: I) -> Result<&mut Self, StreamError>
    where
        I: IntoIterator<Item = SliceSpec>,
    {
        if let Some(last) = self.frames.last() {
            if time <= last.time {
                return Err(StreamError::NonMonotonicTime {
                    previous: last.time,
                    offending: time,
                });
            }
        }
        let index = self.frames.len() as u64;
        let mut out = Vec::new();
        for spec in slices {
            if spec.size == 0 {
                return Err(StreamError::EmptySlice { time });
            }
            out.push(Slice {
                id: SliceId(self.next_id + out.len() as u64),
                frame: index,
                arrival: time,
                size: spec.size,
                weight: spec.weight,
                kind: spec.kind,
            });
        }
        self.next_id += out.len() as u64;
        self.frames.push(Frame {
            index,
            time,
            slices: out,
        });
        Ok(self)
    }

    /// Finishes the builder and produces the stream.
    pub fn build(self) -> InputStream {
        InputStream {
            frames: self.frames,
        }
    }
}

/// An input stream: a set of slices with arrival times (Definition 2.1),
/// organized into frames.
///
/// The stream is immutable once built; this guarantees that every
/// algorithm, the offline optimum, and the validators all see exactly the
/// same arrival sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InputStream {
    frames: Vec<Frame>,
}

impl InputStream {
    /// Starts building a stream frame by frame.
    pub fn builder() -> StreamBuilder {
        StreamBuilder::new()
    }

    /// Builds a stream with one frame per time step `0, 1, 2, …`, each
    /// frame given as a list of slice specs.
    ///
    /// # Panics
    ///
    /// Panics if any slice has size 0.
    pub fn from_frames<I, F>(frames: I) -> Self
    where
        I: IntoIterator<Item = F>,
        F: IntoIterator<Item = SliceSpec>,
    {
        let mut b = StreamBuilder::new();
        for (t, f) in frames.into_iter().enumerate() {
            b.frame(t as Time, f);
        }
        b.build()
    }

    /// The frames of the stream, in arrival order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Iterates over every slice in arrival (= id) order.
    pub fn slices(&self) -> impl Iterator<Item = &Slice> + '_ {
        self.frames.iter().flat_map(|f| f.slices.iter())
    }

    /// Total number of slices.
    pub fn slice_count(&self) -> usize {
        self.frames.iter().map(|f| f.slices.len()).sum()
    }

    /// Total size of the stream in bytes (`|B|` of Definition 2.1).
    pub fn total_bytes(&self) -> Bytes {
        self.frames.iter().map(Frame::bytes).sum()
    }

    /// Total weight of the stream (the maximum possible benefit).
    pub fn total_weight(&self) -> Weight {
        self.frames.iter().map(Frame::weight).sum()
    }

    /// The arrival time of the last frame, or `None` for an empty stream.
    pub fn last_arrival(&self) -> Option<Time> {
        self.frames.last().map(|f| f.time)
    }

    /// Number of time steps spanned: `last_arrival + 1`, or 0 if empty.
    pub fn horizon(&self) -> Time {
        self.last_arrival().map_or(0, |t| t + 1)
    }

    /// Computes descriptive statistics over the stream.
    pub fn stats(&self) -> StreamStats {
        StreamStats::of(self)
    }

    /// Looks up a slice by id.
    ///
    /// Ids are dense in arrival order, so this is a direct index.
    pub fn slice(&self, id: SliceId) -> Option<&Slice> {
        // Binary-search the frame containing the id, then index within it.
        let target = id.0;
        let mut lo = 0usize;
        let mut hi = self.frames.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let f = &self.frames[mid];
            let first = f.slices.first().map(|s| s.id.0);
            match first {
                Some(first) if target < first => hi = mid,
                Some(first) if target >= first + f.slices.len() as u64 => lo = mid + 1,
                Some(first) => return Some(&f.slices[(target - first) as usize]),
                None => {
                    // Empty frame: ids continue on either side. Narrow by
                    // scanning linearly from here (empty frames are rare).
                    return self.slices().find(|s| s.id == id);
                }
            }
        }
        None
    }
}

impl FromIterator<Frame> for InputStream {
    /// Reassembles a stream from frames produced by another stream.
    ///
    /// Used by trace I/O; the frames must already carry consistent ids and
    /// strictly increasing times (checked in debug builds).
    fn from_iter<T: IntoIterator<Item = Frame>>(iter: T) -> Self {
        let frames: Vec<Frame> = iter.into_iter().collect();
        debug_assert!(frames.windows(2).all(|w| w[0].time < w[1].time));
        InputStream { frames }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InputStream {
        let mut b = InputStream::builder();
        b.frame(
            0,
            [
                SliceSpec::new(3, 12, FrameKind::I),
                SliceSpec::new(1, 1, FrameKind::B),
            ],
        );
        b.frame(2, []);
        b.frame(5, [SliceSpec::new(2, 8, FrameKind::P)]);
        b.build()
    }

    #[test]
    fn builder_assigns_dense_ids_in_arrival_order() {
        let s = sample();
        let ids: Vec<u64> = s.slices().map(|x| x.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(s.slice_count(), 3);
    }

    #[test]
    fn totals() {
        let s = sample();
        assert_eq!(s.total_bytes(), 6);
        assert_eq!(s.total_weight(), 21);
        assert_eq!(s.last_arrival(), Some(5));
        assert_eq!(s.horizon(), 6);
    }

    #[test]
    fn empty_stream() {
        let s = InputStream::builder().build();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.horizon(), 0);
        assert_eq!(s.last_arrival(), None);
        assert_eq!(s.slice(SliceId(0)), None);
    }

    #[test]
    fn slice_lookup_by_id() {
        let s = sample();
        assert_eq!(s.slice(SliceId(0)).unwrap().size, 3);
        assert_eq!(s.slice(SliceId(2)).unwrap().arrival, 5);
        assert_eq!(s.slice(SliceId(99)), None);
    }

    #[test]
    fn slice_lookup_with_many_empty_frames() {
        let mut b = InputStream::builder();
        b.frame(0, [SliceSpec::unit()]);
        for t in 1..10 {
            b.frame(t, []);
        }
        b.frame(10, [SliceSpec::unit(), SliceSpec::unit()]);
        let s = b.build();
        assert_eq!(s.slice(SliceId(2)).unwrap().arrival, 10);
        assert_eq!(s.slice(SliceId(0)).unwrap().arrival, 0);
    }

    #[test]
    fn non_monotonic_time_rejected() {
        let mut b = InputStream::builder();
        b.frame(3, [SliceSpec::unit()]);
        let err = b.try_frame(3, [SliceSpec::unit()]).unwrap_err();
        assert_eq!(
            err,
            StreamError::NonMonotonicTime {
                previous: 3,
                offending: 3
            }
        );
    }

    #[test]
    fn zero_size_slice_rejected() {
        let mut b = InputStream::builder();
        let err = b
            .try_frame(0, [SliceSpec::new(0, 5, FrameKind::Generic)])
            .unwrap_err();
        assert_eq!(err, StreamError::EmptySlice { time: 0 });
    }

    #[test]
    fn from_frames_uses_consecutive_times() {
        let s = InputStream::from_frames([
            vec![SliceSpec::unit()],
            vec![],
            vec![SliceSpec::unit(), SliceSpec::unit()],
        ]);
        let times: Vec<Time> = s.frames().iter().map(|f| f.time).collect();
        assert_eq!(times, vec![0, 1, 2]);
        assert_eq!(s.slice_count(), 3);
    }

    #[test]
    fn spec_helpers() {
        assert_eq!(SliceSpec::unit(), SliceSpec::new(1, 1, FrameKind::Generic));
        let s = SliceSpec::sized(7, FrameKind::P);
        assert_eq!((s.size, s.weight), (7, 7));
    }

    #[test]
    fn rebuild_from_frame_iter() {
        let s = sample();
        let t: InputStream = s.frames().iter().cloned().collect();
        assert_eq!(s, t);
    }
}
