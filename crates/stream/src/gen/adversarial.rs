//! Adversarial arrival patterns from the paper's lower-bound proofs.
//!
//! * [`buffer_ratio_tightness`] — the batch pattern showing Lemma 3.6 is
//!   tight: the small buffer loses exactly `B2 − B1` of every `B2`-burst
//!   while the large buffer loses nothing.
//! * [`greedy_lower_bound_stream`] — the Theorem 4.7 stream on which the
//!   optimal schedule beats Greedy by a factor approaching 2.
//! * [`two_scenario_adversary`] — the Theorem 4.8 construction proving no
//!   deterministic online algorithm is better than 1.2287-competitive
//!   (1.28197 with the Lotker/Sviridenko weight ratio α ≈ 4.015).
//!
//! All patterns use unit-size slices and a link rate of `R = 1`, exactly
//! as in the proofs. Weights are integers; a real ratio α is encoded as
//! the integer pair `(w_low, w_high)` with `α = w_high / w_low`.

use crate::{FrameKind, InputStream, SliceSpec, StreamBuilder, Time, Weight};

fn unit(weight: Weight) -> SliceSpec {
    SliceSpec::new(1, weight, FrameKind::Generic)
}

/// The Lemma 3.6 tightness pattern: `repeats` batches, each a burst of
/// `b2` unit slices followed by `b2 − 1` empty steps.
///
/// Run through the generic algorithm with rate 1: a buffer of size `b2`
/// delivers everything, while a buffer of size `b1 ≤ b2` delivers exactly
/// the fraction `b1 / b2` (it drops `b2 − b1` slices of every burst).
///
/// # Panics
///
/// Panics if `b2 == 0` or `repeats == 0`.
pub fn buffer_ratio_tightness(b2: u64, repeats: u64) -> InputStream {
    assert!(b2 > 0, "burst size must be positive");
    assert!(repeats > 0, "need at least one batch");
    let mut b = StreamBuilder::new();
    for rep in 0..repeats {
        let t0 = rep * b2;
        b.frame(t0, (0..b2).map(|_| unit(1)));
        for dt in 1..b2 {
            b.frame(t0 + dt, []);
        }
    }
    b.build()
}

/// The Theorem 4.7 stream (link rate 1, buffer `b`, unit slices):
///
/// * time 0 — `b + 1` slices of weight `w_low`;
/// * times `1 ..= b` — a single slice of weight `w_high` each;
/// * time `b + 1` — `b + 1` slices of weight `w_high`.
///
/// Greedy earns `(b + 1)(w_low + w_high)` while the optimal schedule earns
/// `w_low + (2b + 1) · w_high`, for a ratio approaching 2 as `b` and
/// `α = w_high / w_low` grow.
///
/// # Panics
///
/// Panics if `w_high <= w_low` (the construction needs α > 1).
pub fn greedy_lower_bound_stream(b: u64, w_low: Weight, w_high: Weight) -> InputStream {
    assert!(w_high > w_low, "construction requires w_high > w_low");
    let mut sb = StreamBuilder::new();
    sb.frame(0, (0..=b).map(|_| unit(w_low)));
    for t in 1..=b {
        sb.frame(t, [unit(w_high)]);
    }
    sb.frame(b + 1, (0..=b).map(|_| unit(w_high)));
    sb.build()
}

/// Which of the two Theorem 4.8 adversary endings to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Scenario 1: the stream simply ends after time `t1`.
    EndAtT1,
    /// Scenario 2: at time `t1 + 1`, a burst of `b + 1` heavy slices
    /// arrives.
    BurstAfterT1,
}

/// The Theorem 4.8 two-scenario adversary (link rate 1, buffer `b`):
///
/// * time 0 — `b + 1` slices of weight `w_low`;
/// * times `1 ..= t1` — one slice of weight `w_high` each;
/// * [`Scenario::BurstAfterT1`] additionally delivers `b + 1` slices of
///   weight `w_high` at time `t1 + 1`.
///
/// The adversary observes the last time `t1` at which the online algorithm
/// sends a `w_low` slice and picks whichever ending hurts more; with
/// `α = 2` and `t1/b ≈ 1/1.6861` the worse ratio is ≈ 1.2287 for *every*
/// deterministic online algorithm.
///
/// # Panics
///
/// Panics if `w_high <= w_low`.
pub fn two_scenario_adversary(
    b: u64,
    t1: Time,
    w_low: Weight,
    w_high: Weight,
    scenario: Scenario,
) -> InputStream {
    assert!(w_high > w_low, "construction requires w_high > w_low");
    let mut sb = StreamBuilder::new();
    sb.frame(0, (0..=b).map(|_| unit(w_low)));
    for t in 1..=t1 {
        sb.frame(t, [unit(w_high)]);
    }
    if scenario == Scenario::BurstAfterT1 {
        sb.frame(t1 + 1, (0..=b).map(|_| unit(w_high)));
    }
    sb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tightness_pattern_shape() {
        let s = buffer_ratio_tightness(4, 3);
        assert_eq!(s.total_bytes(), 12);
        assert_eq!(s.frames().len(), 12); // 3 batches of 4 steps each
        assert_eq!(s.frames()[0].slices.len(), 4);
        assert!(s.frames()[1].is_empty());
        assert_eq!(s.frames()[4].slices.len(), 4);
        assert_eq!(s.frames()[4].time, 4);
    }

    #[test]
    fn tightness_single_burst() {
        let s = buffer_ratio_tightness(1, 2);
        assert_eq!(s.frames().len(), 2);
        assert!(s.frames().iter().all(|f| f.slices.len() == 1));
    }

    #[test]
    fn thm47_stream_shape() {
        let b = 5;
        let s = greedy_lower_bound_stream(b, 1, 7);
        // b+1 low + b singles + b+1 high = 2b+2+b slices.
        assert_eq!(s.slice_count() as u64, 3 * b + 2);
        assert_eq!(s.total_weight(), (b + 1) + b * 7 + (b + 1) * 7);
        assert_eq!(s.frames()[0].slices.len() as u64, b + 1);
        assert!(s.frames()[0].slices.iter().all(|x| x.weight == 1));
        assert_eq!(s.frames()[(b + 1) as usize].time, b + 1);
        assert!(s.frames()[(b + 1) as usize]
            .slices
            .iter()
            .all(|x| x.weight == 7));
    }

    #[test]
    #[should_panic(expected = "w_high > w_low")]
    fn thm47_requires_alpha_above_one() {
        greedy_lower_bound_stream(3, 2, 2);
    }

    #[test]
    fn thm48_scenarios_differ_only_in_final_burst() {
        let a = two_scenario_adversary(4, 6, 1, 2, Scenario::EndAtT1);
        let b = two_scenario_adversary(4, 6, 1, 2, Scenario::BurstAfterT1);
        assert_eq!(a.frames().len() + 1, b.frames().len());
        assert_eq!(
            a.total_weight() + 5 * 2,
            b.total_weight(),
            "burst adds (b+1) heavy slices"
        );
        // Common prefix is identical (sizes/weights/times).
        for (fa, fb) in a.frames().iter().zip(b.frames()) {
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn thm48_with_t1_zero_has_no_singles() {
        let s = two_scenario_adversary(2, 0, 1, 3, Scenario::BurstAfterT1);
        assert_eq!(s.frames().len(), 2);
        assert_eq!(s.frames()[1].time, 1);
    }
}
