//! Elementary sources: CBR, on/off bursts, uniform noise.
//!
//! These drive the tradeoff experiments of Section 3.3 (e.g. the
//! "perfectly smooth input with rate R > B/D" counterexample) and serve
//! as simple fixtures for unit and property tests.

use crate::rng::SplitMix64;
use crate::slicing::FrameSizeTrace;
use crate::{Bytes, FrameKind};

/// A constant-bit-rate trace: `n` frames of exactly `size` bytes each.
///
/// With `size > R` the stream is "perfectly smooth with rate above the
/// link rate", the scenario in which Section 3.3 shows that *reducing* the
/// link rate to `B/D` necessarily reduces throughput.
pub fn cbr(n: usize, size: Bytes) -> FrameSizeTrace {
    FrameSizeTrace::new(vec![(FrameKind::Generic, size); n])
}

/// An on/off burst trace: alternating bursts of `on` frames of `burst_size`
/// bytes and `off` silent frames (size 0 produces an empty frame slot,
/// encoded here as a 0-byte record that materializes to an empty frame).
///
/// # Panics
///
/// Panics if `on == 0` (the pattern would contain no data).
pub fn on_off_bursts(n: usize, on: usize, off: usize, burst_size: Bytes) -> FrameSizeTrace {
    assert!(on > 0, "on-period must contain at least one frame");
    let period = on + off;
    let frames = (0..n)
        .map(|t| {
            if t % period < on {
                (FrameKind::Generic, burst_size)
            } else {
                (FrameKind::Generic, 0)
            }
        })
        .collect();
    FrameSizeTrace::new(frames)
}

/// A uniformly random trace: each frame size drawn independently from
/// `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform_random(n: usize, lo: Bytes, hi: Bytes, seed: u64) -> FrameSizeTrace {
    assert!(lo <= hi, "uniform_random requires lo <= hi");
    let mut rng = SplitMix64::new(seed);
    let frames = (0..n)
        .map(|_| (FrameKind::Generic, rng.range_u64(lo, hi)))
        .collect();
    FrameSizeTrace::new(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_is_flat() {
        let t = cbr(10, 7);
        assert_eq!(t.len(), 10);
        assert!(t.frames().iter().all(|&(_, b)| b == 7));
        assert_eq!(t.total_bytes(), 70);
        assert!((t.average_rate() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn bursts_follow_period() {
        let t = on_off_bursts(8, 2, 2, 5);
        let sizes: Vec<Bytes> = t.frames().iter().map(|&(_, b)| b).collect();
        assert_eq!(sizes, vec![5, 5, 0, 0, 5, 5, 0, 0]);
    }

    #[test]
    fn bursts_with_no_off_period() {
        let t = on_off_bursts(4, 1, 0, 3);
        assert_eq!(t.total_bytes(), 12);
    }

    #[test]
    #[should_panic(expected = "on-period")]
    fn bursts_reject_empty_on() {
        on_off_bursts(4, 0, 2, 3);
    }

    #[test]
    fn uniform_in_bounds_and_deterministic() {
        let a = uniform_random(100, 2, 9, 11);
        let b = uniform_random(100, 2, 9, 11);
        assert_eq!(a, b);
        assert!(a.frames().iter().all(|&(_, s)| (2..=9).contains(&s)));
    }
}
