//! A two-state Markov-modulated (on/off) VBR source.
//!
//! The classic burst model of the VBR-traffic literature (the setting
//! of the paper's references [12, 19, 20]): the source alternates
//! between an *on* state emitting large frames and an *off* state
//! emitting small (or no) frames, with geometric sojourn times. Unlike
//! the MPEG source, burst lengths here are memoryless, which makes the
//! model convenient for analytical cross-checks (expected rate is a
//! closed form, tested below).

use crate::rng::SplitMix64;
use crate::slicing::FrameSizeTrace;
use crate::{Bytes, FrameKind};

/// Configuration of the on/off Markov source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovOnOffConfig {
    /// Frame size while *on*.
    pub on_size: Bytes,
    /// Frame size while *off* (0 produces empty frames).
    pub off_size: Bytes,
    /// Probability of leaving the *on* state per step, in `(0, 1]`.
    pub p_on_to_off: f64,
    /// Probability of leaving the *off* state per step, in `(0, 1]`.
    pub p_off_to_on: f64,
}

impl MarkovOnOffConfig {
    /// Long-run fraction of time spent in the *on* state.
    pub fn on_fraction(&self) -> f64 {
        self.p_off_to_on / (self.p_on_to_off + self.p_off_to_on)
    }

    /// Long-run average rate in bytes per step.
    pub fn mean_rate(&self) -> f64 {
        let on = self.on_fraction();
        on * self.on_size as f64 + (1.0 - on) * self.off_size as f64
    }
}

/// Generates `n` frames from the on/off chain, starting in the *off*
/// state.
///
/// # Panics
///
/// Panics if a transition probability is outside `(0, 1]`.
pub fn markov_onoff(config: MarkovOnOffConfig, n: usize, seed: u64) -> FrameSizeTrace {
    assert!(
        config.p_on_to_off > 0.0 && config.p_on_to_off <= 1.0,
        "p_on_to_off must be in (0, 1]"
    );
    assert!(
        config.p_off_to_on > 0.0 && config.p_off_to_on <= 1.0,
        "p_off_to_on must be in (0, 1]"
    );
    let mut rng = SplitMix64::new(seed);
    let mut on = false;
    let frames = (0..n)
        .map(|_| {
            let flip = rng.chance(if on {
                config.p_on_to_off
            } else {
                config.p_off_to_on
            });
            if flip {
                on = !on;
            }
            let size = if on { config.on_size } else { config.off_size };
            (FrameKind::Generic, size)
        })
        .collect();
    FrameSizeTrace::new(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MarkovOnOffConfig {
        MarkovOnOffConfig {
            on_size: 10,
            off_size: 2,
            p_on_to_off: 0.1,
            p_off_to_on: 0.05,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(markov_onoff(cfg(), 500, 3), markov_onoff(cfg(), 500, 3));
        assert_ne!(markov_onoff(cfg(), 500, 3), markov_onoff(cfg(), 500, 4));
    }

    #[test]
    fn only_two_sizes_appear() {
        let t = markov_onoff(cfg(), 300, 1);
        assert!(t.frames().iter().all(|&(_, s)| s == 10 || s == 2));
    }

    #[test]
    fn long_run_rate_matches_closed_form() {
        let c = cfg();
        let t = markov_onoff(c, 60_000, 7);
        let expect = c.mean_rate(); // on fraction = 1/3 → 10/3 + 2*2/3
        assert!((c.on_fraction() - 1.0 / 3.0).abs() < 1e-12);
        let got = t.average_rate();
        assert!(
            (got - expect).abs() < 0.25,
            "measured {got} vs closed form {expect}"
        );
    }

    #[test]
    fn bursts_have_geometric_lengths() {
        let c = cfg();
        let t = markov_onoff(c, 60_000, 9);
        // Mean on-burst length should be ~1/p_on_to_off = 10.
        let mut bursts = Vec::new();
        let mut cur = 0u64;
        for &(_, s) in t.frames() {
            if s == c.on_size {
                cur += 1;
            } else if cur > 0 {
                bursts.push(cur);
                cur = 0;
            }
        }
        let mean = bursts.iter().sum::<u64>() as f64 / bursts.len() as f64;
        assert!((mean - 10.0).abs() < 1.0, "mean burst {mean}");
    }

    #[test]
    #[should_panic(expected = "p_off_to_on")]
    fn rejects_bad_probability() {
        let mut c = cfg();
        c.p_off_to_on = 0.0;
        markov_onoff(c, 10, 0);
    }
}
