//! Trace generators.
//!
//! Three families:
//!
//! * [`mpeg`] — a synthetic MPEG-like VBR video source, the substitute for
//!   the proprietary CNN-archive clips of Section 5 (see DESIGN.md for the
//!   substitution argument);
//! * [`basic`] — elementary sources (constant bit rate, on/off bursts,
//!   uniform noise) used for unit tests and the tradeoff experiments;
//! * [`adversarial`] — the exact arrival patterns from the paper's lower
//!   bound constructions (Lemma 3.6 tightness, Theorem 4.7, Theorem 4.8).

pub mod adversarial;
pub mod basic;
pub mod markov;
pub mod mpeg;

pub use adversarial::{
    buffer_ratio_tightness, greedy_lower_bound_stream, two_scenario_adversary, Scenario,
};
pub use basic::{cbr, on_off_bursts, uniform_random};
pub use markov::{markov_onoff, MarkovOnOffConfig};
pub use mpeg::{MpegConfig, MpegSource};
