//! Synthetic MPEG-like VBR video source.
//!
//! The paper's experiments (Section 5) use MPEG clips from the CNN
//! archive, reporting: average frame size ≈ 38 KB, maximum ≈ 120 KB, and
//! frame-kind frequencies of roughly 8% I, 31% P, 61% B. The clips
//! themselves are long gone, so this module generates traces with the same
//! structure:
//!
//! * a repeating GOP pattern (default 12 frames, `IPBBPBBPBBPB`-style,
//!   tuned to the reported kind frequencies);
//! * per-kind lognormal frame sizes with I > P > B means;
//! * an AR(1) "scene activity" multiplier resampled at scene changes,
//!   which produces the long bursts of valuable bytes the paper observes
//!   ("in MPEG streams, the valuable bytes come in large bursts");
//! * clamping to a maximum frame size.
//!
//! Sizes are in abstract units (1 unit ≈ 1 KB).

use crate::rng::SplitMix64;
use crate::slicing::FrameSizeTrace;
use crate::{Bytes, FrameKind};

/// Configuration of the synthetic MPEG source.
#[derive(Debug, Clone, PartialEq)]
pub struct MpegConfig {
    /// GOP pattern repeated over the trace; must be non-empty.
    pub gop: Vec<FrameKind>,
    /// Mean size of an I frame (units).
    pub mean_i: f64,
    /// Mean size of a P frame (units).
    pub mean_p: f64,
    /// Mean size of a B frame (units).
    pub mean_b: f64,
    /// Lognormal shape parameter (sigma of the underlying normal).
    pub sigma: f64,
    /// Upper clamp on any frame size (units).
    pub max_frame: Bytes,
    /// Mean scene length in frames (geometric); scene changes resample
    /// the activity multiplier.
    pub mean_scene_len: f64,
    /// Spread of the scene activity multiplier (lognormal sigma);
    /// 0 disables scene modulation.
    pub scene_sigma: f64,
    /// AR(1) smoothing coefficient for frame-to-frame correlation,
    /// in `[0, 1)`.
    pub ar1: f64,
}

impl MpegConfig {
    /// A configuration calibrated to the clip statistics reported in
    /// Section 5: mean frame ≈ 38 units, max frame ≈ 120 units, kind
    /// frequencies ≈ 8% / 31% / 61% for I / P / B.
    ///
    /// The GOP has 13 frames with 1 I, 4 P and 8 B: 7.7% / 30.8% / 61.5%.
    pub fn cnn_like() -> Self {
        use FrameKind::{B, I, P};
        MpegConfig {
            gop: vec![I, B, B, P, B, B, P, B, B, P, B, P, B],
            mean_i: 104.0,
            mean_p: 58.0,
            mean_b: 26.0,
            sigma: 0.24,
            max_frame: 120,
            mean_scene_len: 180.0,
            scene_sigma: 0.34,
            ar1: 0.85,
        }
    }
}

impl MpegConfig {
    /// A "stored high-quality clip" preset: the same GOP structure but
    /// steadier scenes and tighter per-frame variance — the kind of
    /// pre-encoded material the lossless-smoothing related work targets
    /// (noticeably smoother than [`cnn_like`](MpegConfig::cnn_like)).
    pub fn studio() -> Self {
        MpegConfig {
            sigma: 0.12,
            scene_sigma: 0.15,
            mean_scene_len: 400.0,
            ar1: 0.9,
            ..MpegConfig::cnn_like()
        }
    }
}

impl Default for MpegConfig {
    fn default() -> Self {
        MpegConfig::cnn_like()
    }
}

/// A deterministic synthetic MPEG-like source.
///
/// # Example
///
/// ```
/// use rts_stream::gen::{MpegConfig, MpegSource};
/// use rts_stream::slicing::Slicing;
/// use rts_stream::weight::WeightAssignment;
///
/// let trace = MpegSource::new(MpegConfig::cnn_like(), 42).frames(500);
/// let stream = trace.materialize(Slicing::PerByte, WeightAssignment::MPEG_12_8_1);
/// assert_eq!(stream.frames().len(), 500);
/// ```
#[derive(Debug, Clone)]
pub struct MpegSource {
    config: MpegConfig,
    rng: SplitMix64,
}

impl MpegSource {
    /// Creates a source from a configuration and a seed.
    ///
    /// # Panics
    ///
    /// Panics if the GOP pattern is empty, any mean size is not positive,
    /// or `ar1` is outside `[0, 1)`.
    pub fn new(config: MpegConfig, seed: u64) -> Self {
        assert!(!config.gop.is_empty(), "GOP pattern must be non-empty");
        assert!(
            config.mean_i > 0.0 && config.mean_p > 0.0 && config.mean_b > 0.0,
            "mean frame sizes must be positive"
        );
        assert!((0.0..1.0).contains(&config.ar1), "ar1 must be in [0, 1)");
        MpegSource {
            config,
            rng: SplitMix64::new(seed),
        }
    }

    /// Generates a trace of `n` frames.
    pub fn frames(&mut self, n: usize) -> FrameSizeTrace {
        let cfg = self.config.clone();
        let mut frames = Vec::with_capacity(n);
        let mut scene_left = self.next_scene_len();
        let mut scene_mult = self.next_scene_mult();
        let mut smooth = 1.0_f64; // AR(1) state around 1.0
        for t in 0..n {
            if scene_left == 0 {
                scene_left = self.next_scene_len();
                scene_mult = self.next_scene_mult();
            }
            scene_left -= 1;
            let kind = cfg.gop[t % cfg.gop.len()];
            let mean = match kind {
                FrameKind::I => cfg.mean_i,
                FrameKind::P => cfg.mean_p,
                FrameKind::B => cfg.mean_b,
                FrameKind::Generic => cfg.mean_b,
            };
            // Lognormal with unit mean: exp(N(-sigma^2/2, sigma)).
            let shape = self.rng.lognormal(-cfg.sigma * cfg.sigma / 2.0, cfg.sigma);
            smooth = cfg.ar1 * smooth + (1.0 - cfg.ar1) * shape;
            let size = (mean * smooth * scene_mult).round();
            let size = (size.max(1.0) as Bytes).min(cfg.max_frame);
            frames.push((kind, size));
        }
        FrameSizeTrace::new(frames)
    }

    fn next_scene_len(&mut self) -> u64 {
        if self.config.mean_scene_len <= 1.0 {
            return 1;
        }
        1 + self.rng.geometric(1.0 / self.config.mean_scene_len)
    }

    fn next_scene_mult(&mut self) -> f64 {
        if self.config.scene_sigma <= 0.0 {
            return 1.0;
        }
        let s = self.config.scene_sigma;
        self.rng.lognormal(-s * s / 2.0, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slicing::Slicing;
    use crate::weight::WeightAssignment;

    #[test]
    fn deterministic_given_seed() {
        let a = MpegSource::new(MpegConfig::cnn_like(), 7).frames(200);
        let b = MpegSource::new(MpegConfig::cnn_like(), 7).frames(200);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MpegSource::new(MpegConfig::cnn_like(), 1).frames(50);
        let b = MpegSource::new(MpegConfig::cnn_like(), 2).frames(50);
        assert_ne!(a, b);
    }

    #[test]
    fn calibration_matches_paper_clip_statistics() {
        let trace = MpegSource::new(MpegConfig::cnn_like(), 42).frames(4000);
        let avg = trace.average_rate();
        assert!(
            (30.0..46.0).contains(&avg),
            "average frame size {avg} should be near the paper's ~38"
        );
        assert!(trace.max_frame_bytes() <= 120);
        assert!(
            trace.max_frame_bytes() >= 100,
            "bursts should approach the clamp; got {}",
            trace.max_frame_bytes()
        );
        // Kind frequencies from the GOP: ~7.7% I, ~30.8% P, ~61.5% B.
        let stream = trace.materialize(Slicing::WholeFrame, WeightAssignment::MPEG_12_8_1);
        let st = stream.stats();
        assert!((st.frame_fraction(FrameKind::I) - 0.077).abs() < 0.02);
        assert!((st.frame_fraction(FrameKind::P) - 0.308).abs() < 0.03);
        assert!((st.frame_fraction(FrameKind::B) - 0.615).abs() < 0.03);
    }

    #[test]
    fn i_frames_are_largest_on_average() {
        let trace = MpegSource::new(MpegConfig::cnn_like(), 3).frames(2000);
        let mut sums = [0.0f64; 3];
        let mut counts = [0u64; 3];
        for &(kind, size) in trace.frames() {
            let idx = match kind {
                FrameKind::I => 0,
                FrameKind::P => 1,
                _ => 2,
            };
            sums[idx] += size as f64;
            counts[idx] += 1;
        }
        let mean = |i: usize| sums[i] / counts[i] as f64;
        assert!(mean(0) > mean(1), "I mean should exceed P mean");
        assert!(mean(1) > mean(2), "P mean should exceed B mean");
    }

    #[test]
    fn studio_preset_is_smoother_than_cnn_like() {
        let cnn = MpegSource::new(MpegConfig::cnn_like(), 8).frames(3000);
        let studio = MpegSource::new(MpegConfig::studio(), 8).frames(3000);
        // Compare burstiness via the dispersion of frame sizes around
        // each trace's own mean (coefficient of variation).
        let cv = |t: &crate::slicing::FrameSizeTrace| {
            let mean = t.average_rate();
            let var: f64 = t
                .frames()
                .iter()
                .map(|&(_, s)| (s as f64 - mean).powi(2))
                .sum::<f64>()
                / t.len() as f64;
            var.sqrt() / mean
        };
        assert!(
            cv(&studio) < cv(&cnn),
            "studio CV {} should be below cnn CV {}",
            cv(&studio),
            cv(&cnn)
        );
    }

    #[test]
    fn sizes_are_within_bounds() {
        let trace = MpegSource::new(MpegConfig::cnn_like(), 5).frames(1000);
        for &(_, size) in trace.frames() {
            assert!((1..=120).contains(&size));
        }
    }

    #[test]
    fn scene_modulation_can_be_disabled() {
        let mut cfg = MpegConfig::cnn_like();
        cfg.scene_sigma = 0.0;
        cfg.mean_scene_len = 1.0;
        let trace = MpegSource::new(cfg, 9).frames(100);
        assert_eq!(trace.len(), 100);
    }

    #[test]
    #[should_panic(expected = "GOP pattern must be non-empty")]
    fn empty_gop_rejected() {
        let mut cfg = MpegConfig::cnn_like();
        cfg.gop.clear();
        MpegSource::new(cfg, 0);
    }

    #[test]
    #[should_panic(expected = "ar1 must be in [0, 1)")]
    fn invalid_ar1_rejected() {
        let mut cfg = MpegConfig::cnn_like();
        cfg.ar1 = 1.0;
        MpegSource::new(cfg, 0);
    }
}
