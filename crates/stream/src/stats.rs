use std::collections::BTreeMap;

use crate::{Bytes, FrameKind, InputStream, Weight};

/// Descriptive statistics of an input stream.
///
/// The experiments of Section 5 parameterize link rate and buffer size
/// relative to the stream's *average rate* (total bytes divided by the
/// number of frames) and *maximum frame size*; this type computes both,
/// plus the per-kind composition used to validate the synthetic MPEG
/// generator against the paper's reported clip statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Number of frames (time steps that carry a frame record).
    pub frame_count: u64,
    /// Number of slices.
    pub slice_count: u64,
    /// Total bytes offered.
    pub total_bytes: Bytes,
    /// Total weight offered.
    pub total_weight: Weight,
    /// Largest single frame, in bytes.
    pub max_frame_bytes: Bytes,
    /// Largest single slice, in bytes (the paper's `Lmax`).
    pub max_slice_bytes: Bytes,
    /// Average rate: total bytes / frame count (0 for an empty stream).
    pub average_rate: f64,
    /// Mean frame size in bytes (same as `average_rate` when one frame
    /// arrives per step).
    pub mean_frame_bytes: f64,
    /// Frame counts per kind, determined by the majority kind of each
    /// frame's slices.
    pub frames_by_kind: BTreeMap<FrameKind, u64>,
    /// Bytes per kind.
    pub bytes_by_kind: BTreeMap<FrameKind, Bytes>,
    /// Weight per kind.
    pub weight_by_kind: BTreeMap<FrameKind, Weight>,
}

impl StreamStats {
    /// Computes statistics for `stream`.
    pub fn of(stream: &InputStream) -> StreamStats {
        let mut s = StreamStats {
            frame_count: stream.frames().len() as u64,
            slice_count: stream.slice_count() as u64,
            total_bytes: stream.total_bytes(),
            total_weight: stream.total_weight(),
            max_frame_bytes: 0,
            max_slice_bytes: 0,
            average_rate: 0.0,
            mean_frame_bytes: 0.0,
            frames_by_kind: BTreeMap::new(),
            bytes_by_kind: BTreeMap::new(),
            weight_by_kind: BTreeMap::new(),
        };
        for frame in stream.frames() {
            let fb = frame.bytes();
            s.max_frame_bytes = s.max_frame_bytes.max(fb);
            let mut kind_bytes: BTreeMap<FrameKind, Bytes> = BTreeMap::new();
            for slice in &frame.slices {
                s.max_slice_bytes = s.max_slice_bytes.max(slice.size);
                *s.bytes_by_kind.entry(slice.kind).or_default() += slice.size;
                *s.weight_by_kind.entry(slice.kind).or_default() += slice.weight;
                *kind_bytes.entry(slice.kind).or_default() += slice.size;
            }
            if let Some((&kind, _)) = kind_bytes.iter().max_by_key(|&(_, &b)| b) {
                *s.frames_by_kind.entry(kind).or_default() += 1;
            }
        }
        if s.frame_count > 0 {
            s.average_rate = s.total_bytes as f64 / s.frame_count as f64;
            s.mean_frame_bytes = s.average_rate;
        }
        s
    }

    /// Fraction of frames of the given kind, in `[0, 1]`.
    pub fn frame_fraction(&self, kind: FrameKind) -> f64 {
        if self.frame_count == 0 {
            return 0.0;
        }
        *self.frames_by_kind.get(&kind).unwrap_or(&0) as f64 / self.frame_count as f64
    }

    /// A link rate equal to `factor` times the average stream rate,
    /// rounded to the nearest positive integer — the parameterization used
    /// throughout Section 5 ("10% above the average rate" etc.).
    pub fn rate_at(&self, factor: f64) -> Bytes {
        (self.average_rate * factor).round().max(1.0) as Bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SliceSpec;

    fn stream() -> InputStream {
        InputStream::from_frames([
            vec![
                SliceSpec::new(6, 12, FrameKind::I),
                SliceSpec::new(2, 1, FrameKind::B),
            ],
            vec![SliceSpec::new(4, 8, FrameKind::P)],
            vec![SliceSpec::new(2, 1, FrameKind::B)],
        ])
    }

    #[test]
    fn totals_and_maxima() {
        let st = stream().stats();
        assert_eq!(st.frame_count, 3);
        assert_eq!(st.slice_count, 4);
        assert_eq!(st.total_bytes, 14);
        assert_eq!(st.total_weight, 22);
        assert_eq!(st.max_frame_bytes, 8);
        assert_eq!(st.max_slice_bytes, 6);
    }

    #[test]
    fn average_rate_and_rate_at() {
        let st = stream().stats();
        assert!((st.average_rate - 14.0 / 3.0).abs() < 1e-12);
        assert_eq!(st.rate_at(1.0), 5); // 4.67 rounds to 5
        assert_eq!(st.rate_at(0.0), 1); // clamped to a positive rate
    }

    #[test]
    fn per_kind_accounting_uses_majority_kind() {
        let st = stream().stats();
        // Frame 0 is majority-I (6 of 8 bytes).
        assert_eq!(st.frames_by_kind[&FrameKind::I], 1);
        assert_eq!(st.frames_by_kind[&FrameKind::P], 1);
        assert_eq!(st.frames_by_kind[&FrameKind::B], 1);
        assert_eq!(st.bytes_by_kind[&FrameKind::B], 4);
        assert_eq!(st.weight_by_kind[&FrameKind::I], 12);
        assert!((st.frame_fraction(FrameKind::I) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_stats() {
        let st = InputStream::default().stats();
        assert_eq!(st.frame_count, 0);
        assert_eq!(st.average_rate, 0.0);
        assert_eq!(st.frame_fraction(FrameKind::I), 0.0);
    }
}
