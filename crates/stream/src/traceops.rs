//! Trace transforms and descriptive statistics on [`FrameSizeTrace`].
//!
//! Workload engineering helpers: compose recorded/synthetic traces
//! (concatenate, repeat, window), rescale them to a different unit, and
//! quantify their burst structure (percentiles, peak-to-mean ratio,
//! autocorrelation) — the knobs the experiments and docs reason about.

use crate::slicing::FrameSizeTrace;
use crate::Bytes;

impl FrameSizeTrace {
    /// Concatenates two traces (the other plays after this one).
    pub fn concat(&self, other: &FrameSizeTrace) -> FrameSizeTrace {
        let mut frames = self.frames().to_vec();
        frames.extend_from_slice(other.frames());
        FrameSizeTrace::new(frames)
    }

    /// Repeats the trace `times` times end to end.
    pub fn repeated(&self, times: usize) -> FrameSizeTrace {
        let mut frames = Vec::with_capacity(self.len() * times);
        for _ in 0..times {
            frames.extend_from_slice(self.frames());
        }
        FrameSizeTrace::new(frames)
    }

    /// Rescales every frame size by `num/den` (rounding to nearest;
    /// non-empty frames never shrink below 1 byte).
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn scaled(&self, num: u64, den: u64) -> FrameSizeTrace {
        assert!(den > 0, "scale denominator must be positive");
        let frames = self
            .frames()
            .iter()
            .map(|&(k, s)| {
                if s == 0 {
                    (k, 0)
                } else {
                    let scaled = (s as u128 * num as u128 + den as u128 / 2) / den as u128;
                    (k, (scaled as Bytes).max(1))
                }
            })
            .collect();
        FrameSizeTrace::new(frames)
    }

    /// The sub-trace of `len` frames starting at `start` (clamped to the
    /// trace end).
    pub fn window(&self, start: usize, len: usize) -> FrameSizeTrace {
        let end = (start + len).min(self.len());
        let start = start.min(end);
        FrameSizeTrace::new(self.frames()[start..end].to_vec())
    }

    /// The `p`-th percentile of frame sizes, `p` in `[0, 100]`.
    ///
    /// Returns 0 for an empty trace.
    ///
    /// # Panics
    ///
    /// Panics if `p > 100`.
    pub fn size_percentile(&self, p: u32) -> Bytes {
        assert!(p <= 100, "percentile must be within 0..=100");
        if self.is_empty() {
            return 0;
        }
        let mut sizes: Vec<Bytes> = self.frames().iter().map(|&(_, s)| s).collect();
        sizes.sort_unstable();
        let rank = (p as usize * (sizes.len() - 1) + 50) / 100;
        sizes[rank.min(sizes.len() - 1)]
    }

    /// Peak-to-mean ratio of the frame sizes (the burstiness figure the
    /// smoothing literature quotes; 1.0 for CBR).
    pub fn peak_to_mean(&self) -> f64 {
        let mean = self.average_rate();
        if mean == 0.0 {
            return 0.0;
        }
        self.max_frame_bytes() as f64 / mean
    }

    /// Lag-`k` autocorrelation of the frame-size series, in `[-1, 1]`.
    ///
    /// Returns 0 when fewer than `k + 2` frames exist or the series is
    /// constant.
    pub fn autocorrelation(&self, lag: usize) -> f64 {
        let n = self.len();
        if n < lag + 2 {
            return 0.0;
        }
        let xs: Vec<f64> = self.frames().iter().map(|&(_, s)| s as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
        if var == 0.0 {
            return 0.0;
        }
        let cov: f64 = xs
            .windows(lag + 1)
            .map(|w| (w[0] - mean) * (w[lag] - mean))
            .sum();
        cov / var
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{cbr, MpegConfig, MpegSource};
    use crate::FrameKind;

    fn trace(sizes: &[Bytes]) -> FrameSizeTrace {
        FrameSizeTrace::new(sizes.iter().map(|&s| (FrameKind::Generic, s)).collect())
    }

    #[test]
    fn concat_and_repeat() {
        let a = trace(&[1, 2]);
        let b = trace(&[3]);
        assert_eq!(a.concat(&b), trace(&[1, 2, 3]));
        assert_eq!(b.repeated(3), trace(&[3, 3, 3]));
        assert_eq!(a.repeated(0), trace(&[]));
    }

    #[test]
    fn scaling_rounds_and_clamps() {
        let t = trace(&[10, 1, 0, 3]);
        assert_eq!(t.scaled(1, 2), trace(&[5, 1, 0, 2])); // 1 -> 0.5 -> clamp 1; 3 -> 1.5 -> 2
        assert_eq!(t.scaled(3, 1), trace(&[30, 3, 0, 9]));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_rejected() {
        trace(&[1]).scaled(1, 0);
    }

    #[test]
    fn window_clamps() {
        let t = trace(&[1, 2, 3, 4]);
        assert_eq!(t.window(1, 2), trace(&[2, 3]));
        assert_eq!(t.window(3, 10), trace(&[4]));
        assert_eq!(t.window(9, 2), trace(&[]));
    }

    #[test]
    fn percentiles() {
        let t = trace(&[1, 2, 3, 4, 100]);
        assert_eq!(t.size_percentile(0), 1);
        assert_eq!(t.size_percentile(50), 3);
        assert_eq!(t.size_percentile(100), 100);
        assert_eq!(trace(&[]).size_percentile(50), 0);
    }

    #[test]
    fn peak_to_mean_of_cbr_is_one() {
        let t = cbr(50, 7);
        assert!((t.peak_to_mean() - 1.0).abs() < 1e-12);
        assert_eq!(trace(&[]).peak_to_mean(), 0.0);
    }

    #[test]
    fn autocorrelation_detects_burst_structure() {
        // The MPEG source correlates strongly at GOP-period lags (the
        // same frame kind under the same scene activity), while lag-1
        // correlation is diluted by the I/B/P size alternation within a
        // GOP; constants are 0 by convention.
        let mpeg = MpegSource::new(MpegConfig::cnn_like(), 4).frames(3000);
        let gop = MpegConfig::cnn_like().gop.len();
        assert!(
            mpeg.autocorrelation(gop) > 0.5,
            "gop-lag correlation {}",
            mpeg.autocorrelation(gop)
        );
        assert!(
            mpeg.autocorrelation(gop) > mpeg.autocorrelation(1),
            "GOP-period correlation should dominate lag-1"
        );
        let flat = cbr(100, 5);
        assert_eq!(flat.autocorrelation(1), 0.0);
        let alternating = trace(&[1, 9].repeat(200));
        assert!(alternating.autocorrelation(1) < -0.8);
        assert!(alternating.autocorrelation(2) > 0.8);
    }

    #[test]
    fn autocorrelation_degenerate_inputs() {
        assert_eq!(trace(&[]).autocorrelation(1), 0.0);
        assert_eq!(trace(&[5]).autocorrelation(1), 0.0);
        assert_eq!(trace(&[5, 5]).autocorrelation(5), 0.0);
    }
}
