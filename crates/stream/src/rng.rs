//! A small deterministic PRNG for reproducible trace generation.
//!
//! Traces drive every figure in EXPERIMENTS.md, so they must be exactly
//! reproducible from a recorded `u64` seed, independent of external crate
//! versions. [`SplitMix64`] (Steele, Lea & Flood 2014) is tiny, passes
//! BigCrush when used as a 64-bit generator, and is the standard seeding
//! primitive of the xoshiro family.

/// SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use rts_stream::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every distinct seed yields an
    /// independent-looking sequence.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Rejection sampling over a widened modulus avoids modulo bias.
        let m = span + 1;
        let zone = u64::MAX - (u64::MAX % m);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % m;
            }
        }
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal draw (Box–Muller; one of the pair is discarded to
    /// keep the generator stateless beyond `state`).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by drawing from (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal draw with the given parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Geometric draw: number of failures before the first success with
    /// success probability `p` in `(0, 1]`, i.e. mean `(1 - p) / p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric requires p in (0, 1]");
        if p >= 1.0 {
            return 0;
        }
        let u = 1.0 - self.next_f64(); // in (0, 1]
        let draws = u.ln() / (1.0 - p).ln();
        draws.floor().min(u64::MAX as f64 / 2.0) as u64
    }

    /// Derives an independent child generator (for splitting one seed into
    /// per-component streams).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_reference_values() {
        // Reference outputs of SplitMix64 with seed 0 (from the public
        // domain reference implementation by Sebastiano Vigna).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_inclusive_and_covering() {
        let mut r = SplitMix64::new(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.range_u64(10, 14);
            assert!((10..=14).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should occur");
        assert_eq!(r.range_u64(3, 3), 3);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn range_rejects_inverted_bounds() {
        SplitMix64::new(0).range_u64(2, 1);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SplitMix64::new(3);
        let n = 20_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let v = r.normal();
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.06, "variance {var} too far from 1");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = SplitMix64::new(4);
        for _ in 0..1000 {
            assert!(r.lognormal(3.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = SplitMix64::new(5);
        let p = 0.25;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expect = (1.0 - p) / p; // = 3
        assert!(
            (mean - expect).abs() < 0.15,
            "geometric mean {mean} vs {expect}"
        );
        assert_eq!(r.geometric(1.0), 0);
    }

    #[test]
    fn chance_respects_probability() {
        let mut r = SplitMix64::new(6);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn split_produces_diverging_generators() {
        let mut parent = SplitMix64::new(9);
        let mut a = parent.split();
        let mut b = parent.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
