//! Crate-local property tests for the stream model.

use proptest::collection::vec;
use proptest::prelude::*;

use rts_stream::gen::{markov_onoff, MarkovOnOffConfig};
use rts_stream::rng::SplitMix64;
use rts_stream::slicing::{FrameSizeTrace, Slicing};
use rts_stream::weight::WeightAssignment;
use rts_stream::{merge, textio, FrameKind, InputStream, SliceSpec};

fn trace_strategy() -> impl Strategy<Value = FrameSizeTrace> {
    vec(0u64..200, 0..40).prop_map(|sizes| {
        FrameSizeTrace::new(sizes.into_iter().map(|s| (FrameKind::Generic, s)).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every slicing policy partitions the frame exactly.
    #[test]
    fn slicing_partitions_exactly(size in 0u64..500, chunk in 1u64..64) {
        for slicing in [Slicing::PerByte, Slicing::WholeFrame, Slicing::Chunks(chunk)] {
            let parts = slicing.split(size);
            prop_assert_eq!(parts.iter().sum::<u64>(), size);
            prop_assert!(parts.iter().all(|&p| p >= 1));
            if let Slicing::Chunks(c) = slicing {
                prop_assert!(parts.iter().all(|&p| p <= c));
            }
        }
    }

    /// Materializing preserves total bytes at every granularity, and
    /// per-kind-byte weights make total weight granularity-invariant.
    #[test]
    fn materialize_invariants(trace in trace_strategy(), chunk in 1u64..32) {
        let w = WeightAssignment::MPEG_12_8_1;
        let a = trace.materialize(Slicing::PerByte, w);
        let b = trace.materialize(Slicing::WholeFrame, w);
        let c = trace.materialize(Slicing::Chunks(chunk), w);
        prop_assert_eq!(a.total_bytes(), trace.total_bytes());
        prop_assert_eq!(b.total_bytes(), trace.total_bytes());
        prop_assert_eq!(c.total_bytes(), trace.total_bytes());
        prop_assert_eq!(a.total_weight(), b.total_weight());
        prop_assert_eq!(a.total_weight(), c.total_weight());
    }

    /// Trace transforms compose sanely.
    #[test]
    fn transforms_preserve_counts(trace in trace_strategy(), times in 0usize..4) {
        let repeated = trace.repeated(times);
        prop_assert_eq!(repeated.len(), trace.len() * times);
        prop_assert_eq!(repeated.total_bytes(), trace.total_bytes() * times as u64);
        let windowed = trace.window(1, 5);
        prop_assert!(windowed.len() <= 5);
        let doubled = trace.scaled(2, 1);
        prop_assert_eq!(doubled.total_bytes(), trace.total_bytes() * 2);
    }

    /// Merging preserves bytes, weight, and per-origin slice counts.
    #[test]
    fn merge_preserves_everything(
        a in trace_strategy(),
        b in trace_strategy(),
    ) {
        let sa = a.materialize(Slicing::WholeFrame, WeightAssignment::BySize);
        let sb = b.materialize(Slicing::WholeFrame, WeightAssignment::BySize);
        let m = merge(&[sa.clone(), sb.clone()]);
        prop_assert_eq!(m.stream.total_bytes(), sa.total_bytes() + sb.total_bytes());
        prop_assert_eq!(m.stream.total_weight(), sa.total_weight() + sb.total_weight());
        let from_a = m.origin.iter().filter(|&&o| o == 0).count();
        prop_assert_eq!(from_a, sa.slice_count());
    }

    /// Both text formats round-trip arbitrary content.
    #[test]
    fn both_text_formats_roundtrip(trace in trace_strategy()) {
        let sizes_text = textio::write_frame_sizes(&trace);
        prop_assert_eq!(&textio::parse_frame_sizes(&sizes_text).unwrap(), &trace);
        let stream = trace.materialize(Slicing::Chunks(7), WeightAssignment::MPEG_12_8_1);
        let stream_text = textio::write_stream(&stream);
        prop_assert_eq!(textio::parse_stream(&stream_text).unwrap(), stream);
    }

    /// SplitMix64 ranges are honest for arbitrary bounds.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let hi = lo + span;
        for _ in 0..32 {
            let v = rng.range_u64(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    /// The Markov source only emits its two configured sizes and is
    /// reproducible.
    #[test]
    fn markov_emits_two_sizes(seed in any::<u64>(), n in 1usize..200) {
        let cfg = MarkovOnOffConfig {
            on_size: 9,
            off_size: 2,
            p_on_to_off: 0.2,
            p_off_to_on: 0.1,
        };
        let t1 = markov_onoff(cfg, n, seed);
        let t2 = markov_onoff(cfg, n, seed);
        prop_assert_eq!(&t1, &t2);
        prop_assert!(t1.frames().iter().all(|&(_, s)| s == 9 || s == 2));
    }

    /// Builder ids are dense and ordered for arbitrary frame shapes.
    #[test]
    fn builder_ids_dense(frames in vec(vec((1u64..5, 0u64..9), 0..5), 0..10)) {
        let stream = InputStream::from_frames(frames.iter().map(|f| {
            f.iter()
                .map(|&(s, w)| SliceSpec::new(s, w, FrameKind::Generic))
                .collect::<Vec<_>>()
        }));
        for (i, s) in stream.slices().enumerate() {
            prop_assert_eq!(s.id.index(), i);
        }
    }
}
