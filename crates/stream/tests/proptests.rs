//! Crate-local randomized tests for the stream model, driven by the
//! crate's own deterministic `SplitMix64` PRNG so they run with no
//! external test-framework dependency.

use rts_stream::gen::{markov_onoff, MarkovOnOffConfig};
use rts_stream::rng::SplitMix64;
use rts_stream::slicing::{FrameSizeTrace, Slicing};
use rts_stream::weight::WeightAssignment;
use rts_stream::{merge, textio, FrameKind, InputStream, SliceSpec};

const CASES: u64 = 128;

fn random_trace(rng: &mut SplitMix64) -> FrameSizeTrace {
    let n = rng.range_u64(0, 39);
    FrameSizeTrace::new(
        (0..n)
            .map(|_| (FrameKind::Generic, rng.range_u64(0, 199)))
            .collect(),
    )
}

/// Every slicing policy partitions the frame exactly.
#[test]
fn slicing_partitions_exactly() {
    let mut rng = SplitMix64::new(0x5EED_0001);
    for case in 0..CASES {
        let size = rng.range_u64(0, 499);
        let chunk = rng.range_u64(1, 63);
        for slicing in [Slicing::PerByte, Slicing::WholeFrame, Slicing::Chunks(chunk)] {
            let parts = slicing.split(size);
            assert_eq!(parts.iter().sum::<u64>(), size, "case {case}");
            assert!(parts.iter().all(|&p| p >= 1), "case {case}");
            if let Slicing::Chunks(c) = slicing {
                assert!(parts.iter().all(|&p| p <= c), "case {case}");
            }
        }
    }
}

/// Materializing preserves total bytes at every granularity, and
/// per-kind-byte weights make total weight granularity-invariant.
#[test]
fn materialize_invariants() {
    let mut rng = SplitMix64::new(0x5EED_0002);
    for case in 0..CASES {
        let trace = random_trace(&mut rng);
        let chunk = rng.range_u64(1, 31);
        let w = WeightAssignment::MPEG_12_8_1;
        let a = trace.materialize(Slicing::PerByte, w);
        let b = trace.materialize(Slicing::WholeFrame, w);
        let c = trace.materialize(Slicing::Chunks(chunk), w);
        assert_eq!(a.total_bytes(), trace.total_bytes(), "case {case}");
        assert_eq!(b.total_bytes(), trace.total_bytes(), "case {case}");
        assert_eq!(c.total_bytes(), trace.total_bytes(), "case {case}");
        assert_eq!(a.total_weight(), b.total_weight(), "case {case}");
        assert_eq!(a.total_weight(), c.total_weight(), "case {case}");
    }
}

/// Trace transforms compose sanely.
#[test]
fn transforms_preserve_counts() {
    let mut rng = SplitMix64::new(0x5EED_0003);
    for case in 0..CASES {
        let trace = random_trace(&mut rng);
        let times = rng.range_u64(0, 3) as usize;
        let repeated = trace.repeated(times);
        assert_eq!(repeated.len(), trace.len() * times, "case {case}");
        assert_eq!(
            repeated.total_bytes(),
            trace.total_bytes() * times as u64,
            "case {case}"
        );
        let windowed = trace.window(1, 5);
        assert!(windowed.len() <= 5, "case {case}");
        let doubled = trace.scaled(2, 1);
        assert_eq!(doubled.total_bytes(), trace.total_bytes() * 2, "case {case}");
    }
}

/// Merging preserves bytes, weight, and per-origin slice counts.
#[test]
fn merge_preserves_everything() {
    let mut rng = SplitMix64::new(0x5EED_0004);
    for case in 0..CASES {
        let a = random_trace(&mut rng);
        let b = random_trace(&mut rng);
        let sa = a.materialize(Slicing::WholeFrame, WeightAssignment::BySize);
        let sb = b.materialize(Slicing::WholeFrame, WeightAssignment::BySize);
        let m = merge(&[sa.clone(), sb.clone()]);
        assert_eq!(
            m.stream.total_bytes(),
            sa.total_bytes() + sb.total_bytes(),
            "case {case}"
        );
        assert_eq!(
            m.stream.total_weight(),
            sa.total_weight() + sb.total_weight(),
            "case {case}"
        );
        let from_a = m.origin.iter().filter(|&&o| o == 0).count();
        assert_eq!(from_a, sa.slice_count(), "case {case}");
    }
}

/// Both text formats round-trip arbitrary content.
#[test]
fn both_text_formats_roundtrip() {
    let mut rng = SplitMix64::new(0x5EED_0005);
    for case in 0..CASES {
        let trace = random_trace(&mut rng);
        let sizes_text = textio::write_frame_sizes(&trace);
        assert_eq!(
            &textio::parse_frame_sizes(&sizes_text).unwrap(),
            &trace,
            "case {case}"
        );
        let stream = trace.materialize(Slicing::Chunks(7), WeightAssignment::MPEG_12_8_1);
        let stream_text = textio::write_stream(&stream);
        assert_eq!(textio::parse_stream(&stream_text).unwrap(), stream, "case {case}");
    }
}

/// SplitMix64 ranges are honest for arbitrary bounds.
#[test]
fn rng_range_bounds() {
    let mut meta = SplitMix64::new(0x5EED_0006);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let lo = meta.range_u64(0, 999);
        let hi = lo + meta.range_u64(0, 999);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            let v = rng.range_u64(lo, hi);
            assert!((lo..=hi).contains(&v), "case {case}");
        }
    }
}

/// The Markov source only emits its two configured sizes and is
/// reproducible.
#[test]
fn markov_emits_two_sizes() {
    let mut meta = SplitMix64::new(0x5EED_0007);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let n = meta.range_u64(1, 199) as usize;
        let cfg = MarkovOnOffConfig {
            on_size: 9,
            off_size: 2,
            p_on_to_off: 0.2,
            p_off_to_on: 0.1,
        };
        let t1 = markov_onoff(cfg, n, seed);
        let t2 = markov_onoff(cfg, n, seed);
        assert_eq!(&t1, &t2, "case {case}");
        assert!(
            t1.frames().iter().all(|&(_, s)| s == 9 || s == 2),
            "case {case}"
        );
    }
}

/// Builder ids are dense and ordered for arbitrary frame shapes.
#[test]
fn builder_ids_dense() {
    let mut rng = SplitMix64::new(0x5EED_0008);
    for case in 0..CASES {
        let frames: Vec<Vec<SliceSpec>> = (0..rng.range_u64(0, 9))
            .map(|_| {
                (0..rng.range_u64(0, 4))
                    .map(|_| {
                        SliceSpec::new(rng.range_u64(1, 4), rng.range_u64(0, 8), FrameKind::Generic)
                    })
                    .collect()
            })
            .collect();
        let stream = InputStream::from_frames(frames);
        for (i, s) in stream.slices().enumerate() {
            assert_eq!(s.id.index(), i, "case {case}");
        }
    }
}
