//! `rts-telemetry`: the live metrics plane for the smoothing daemon.
//!
//! The paper's guarantees are per-slot — resource bounds, smoothness,
//! and loss are all functions of what happens inside each length-`D`
//! window — so a daemon stepping a million sessions needs a live view
//! of slot timing, not just an exit report. This crate provides it
//! with zero external dependencies and zero locks on the data plane:
//!
//! * [`Registry`] / [`ShardTelemetry`] — per-shard instrument blocks
//!   (atomic counters plus fixed-size [`AtomicHistogram`] mirrors of
//!   `rts_obs::LogHistogram`) that workers write allocation-free and
//!   scrapers read without stopping anything.
//! * [`SlotClock`] / [`SlotPacing`] — absolute-deadline slot pacing
//!   that holds the configured period (instead of drifting by per-slot
//!   work time like a post-slot sleep) and accounts deadline misses,
//!   slot overruns, and lateness.
//! * [`render_exposition`] / [`MetricsServer`] — a hand-rolled
//!   Prometheus-style text encoder and a minimal HTTP/1.0-over-TCP
//!   listener (`--metrics-addr`) so external scrapers and tests can
//!   poll a running daemon.
//!
//! The daemon additionally surfaces the same numbers over its own
//! frame protocol (`smoothctl top` consumes those), and an `rts-check`
//! oracle pins snapshot-equals-live for the atomic histograms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomic;
mod clock;
mod expo;
mod registry;
mod server;

pub use atomic::{AtomicCounter, AtomicHistogram};
pub use clock::{Clock, ManualClock, MonotonicClock, SlotClock, SlotOutcome, SlotPacing};
pub use expo::{parse_exposition, render_exposition, series_value, QUANTILES};
pub use registry::{reject_index, Registry, RegistrySnapshot, ShardSnapshot, ShardTelemetry, STAGES};
pub use server::{MetricsServer, RenderFn};
