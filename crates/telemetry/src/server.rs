//! The `--metrics-addr` listener: a minimal HTTP/1.0 responder over
//! plain TCP that serves the text exposition to any scraper
//! (`curl`, a Prometheus agent, the CI smoke step).
//!
//! Deliberately tiny: one accept thread, one short-lived blocking read
//! per connection (scrape requests are a few hundred bytes), the whole
//! response written in one shot, connection closed. The render
//! callback runs per scrape, so each response is a fresh registry
//! snapshot; the data plane is never paused.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Renders the current exposition body on demand.
pub type RenderFn = Arc<dyn Fn() -> String + Send + Sync>;

/// A running metrics listener. Dropping it stops the accept loop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer").field("addr", &self.addr).finish()
    }
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve `render()` output to
    /// every connection until [`stop`](MetricsServer::stop) or drop.
    pub fn serve<A: ToSocketAddrs>(addr: A, render: RenderFn) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("smoothd-metrics".into())
            .spawn(move || accept_loop(listener, render, stop_flag))
            .expect("spawn metrics thread");
        Ok(MetricsServer {
            addr,
            stop,
            join: Some(join),
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, render: RenderFn, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((conn, _peer)) => {
                // Serve inline: scrapes are small and rare relative to
                // the slot rate, and a stuck client only stalls this
                // thread (bounded by the read timeout), never a worker.
                let _ = serve_one(conn, &render);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn serve_one(mut conn: TcpStream, render: &RenderFn) -> std::io::Result<()> {
    conn.set_nonblocking(false)?;
    conn.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request headers (or timeout / 4 KiB):
    // we answer every request path identically, so the request bytes
    // only need to be drained, not routed.
    let mut req = [0u8; 4096];
    let mut seen = 0;
    while seen < req.len() {
        match conn.read(&mut req[seen..]) {
            Ok(0) => break,
            Ok(n) => {
                seen += n;
                if req[..seen].windows(4).any(|w| w == b"\r\n\r\n")
                    || req[..seen].windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    let body = render();
    let header = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(header.as_bytes())?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
            .unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        buf
    }

    #[test]
    fn serves_fresh_bodies_per_scrape() {
        use std::sync::atomic::AtomicU64;
        let hits = Arc::new(AtomicU64::new(0));
        let render_hits = Arc::clone(&hits);
        let render: RenderFn = Arc::new(move || {
            let n = render_hits.fetch_add(1, Ordering::Relaxed) + 1;
            format!("scrape_count {n}\n")
        });
        let mut server = MetricsServer::serve("127.0.0.1:0", render).unwrap();
        let first = scrape(server.local_addr());
        let second = scrape(server.local_addr());
        assert!(first.starts_with("HTTP/1.0 200 OK\r\n"), "{first}");
        assert!(first.contains("Content-Type: text/plain"), "{first}");
        assert!(first.ends_with("scrape_count 1\n"), "{first}");
        assert!(second.ends_with("scrape_count 2\n"), "{second}");
        server.stop();
    }

    #[test]
    fn stop_is_idempotent_and_unbinds() {
        let render: RenderFn = Arc::new(|| String::from("x 1\n"));
        let mut server = MetricsServer::serve("127.0.0.1:0", render).unwrap();
        let addr = server.local_addr();
        server.stop();
        server.stop();
        // After stop the port is free again (drop also stops, but the
        // loop must have exited by now).
        assert!(TcpListener::bind(addr).is_ok());
    }
}
