//! The instrument registry: one [`ShardTelemetry`] per worker plus
//! daemon-wide instruments, shared between the data plane (writers)
//! and scrapers (readers) through plain `Arc`s — no locks anywhere.

use std::sync::Arc;

use rts_obs::{LogHistogram, RejectReason};

use crate::atomic::{AtomicCounter, AtomicHistogram};

/// Live instruments for one shard worker. The owning worker is the
/// only writer; anyone may read.
#[derive(Debug, Default)]
pub struct ShardTelemetry {
    /// Resident sessions (gauge, overwritten each slot).
    pub sessions: AtomicCounter,
    /// Slots stepped since start.
    pub slots: AtomicCounter,
    /// Slices delivered to playout since start.
    pub played_slices: AtomicCounter,
    /// Bytes sent over the shard link since start.
    pub sent_bytes: AtomicCounter,
    /// Slots that finished past their absolute deadline.
    pub deadline_misses: AtomicCounter,
    /// Slots whose work alone exceeded the configured period.
    pub slot_overruns: AtomicCounter,
    /// Sessions this shard received from other shards (rebalancing).
    pub migrations_in: AtomicCounter,
    /// Sessions this shard handed to other shards (rebalancing).
    pub migrations_out: AtomicCounter,
    /// Rebalancer cost-over-mean gauge in milli-units (1000 = exactly
    /// the fleet mean); written by the control plane each evaluation.
    pub imbalance_milli: AtomicCounter,
    /// Nanoseconds past the deadline, per missed slot.
    pub lateness: AtomicHistogram,
    /// Nanoseconds spent applying queued commands, per busy drain.
    pub admit: AtomicHistogram,
    /// Nanoseconds spent in `process_slot`, per slot.
    pub process: AtomicHistogram,
    /// Nanoseconds spent harvesting retirements, per harvest.
    pub retire: AtomicHistogram,
}

/// The self-profiling stages a worker times, in exposition order.
pub const STAGES: [&str; 4] = ["ingest-decode", "admit", "process", "retire"];

/// Daemon-wide instrument registry: per-shard blocks plus ingest-side
/// and admission-side instruments written outside the workers.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<Arc<ShardTelemetry>>,
    /// Nanoseconds spent decoding one ingest frame.
    pub ingest_decode: AtomicHistogram,
    /// Sessions fully retired and harvested.
    pub retired: AtomicCounter,
    /// Sessions migrated between shards by the rebalancer.
    pub migrations: AtomicCounter,
    /// Bytes written by snapshot checkpoints, cumulative.
    pub snapshot_bytes: AtomicCounter,
    /// Wall nanoseconds spent building snapshots, cumulative.
    pub snapshot_duration_ns: AtomicCounter,
    /// Sessions restored from a snapshot at startup.
    pub restored_sessions: AtomicCounter,
    rejects: [AtomicCounter; RejectReason::ALL.len()],
}

impl Registry {
    /// A registry for `shards` workers, all instruments at zero.
    pub fn new(shards: usize) -> Self {
        Registry {
            shards: (0..shards).map(|_| Arc::new(ShardTelemetry::default())).collect(),
            ingest_decode: AtomicHistogram::new(),
            retired: AtomicCounter::new(),
            migrations: AtomicCounter::new(),
            snapshot_bytes: AtomicCounter::new(),
            snapshot_duration_ns: AtomicCounter::new(),
            restored_sessions: AtomicCounter::new(),
            rejects: Default::default(),
        }
    }

    /// Number of shard blocks.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The instrument block for shard `i` (cloneable handle for the
    /// worker thread).
    pub fn shard(&self, i: usize) -> Arc<ShardTelemetry> {
        Arc::clone(&self.shards[i])
    }

    /// Count one ingest rejection under its typed reason.
    pub fn record_reject(&self, reason: RejectReason) {
        self.rejects[reject_index(reason)].inc();
    }

    /// Per-reason reject counts, in [`RejectReason::ALL`] order.
    pub fn rejects(&self) -> [u64; RejectReason::ALL.len()] {
        let mut out = [0u64; RejectReason::ALL.len()];
        for (slot, counter) in out.iter_mut().zip(&self.rejects) {
            *slot = counter.get();
        }
        out
    }

    /// A coherent-enough point-in-time copy of every instrument.
    /// Individual fields are racy relative to each other (writers do
    /// not stop), but each is monotone and internally consistent.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let shards: Vec<ShardSnapshot> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardSnapshot {
                shard: i,
                sessions: s.sessions.get(),
                slots: s.slots.get(),
                played_slices: s.played_slices.get(),
                sent_bytes: s.sent_bytes.get(),
                deadline_misses: s.deadline_misses.get(),
                slot_overruns: s.slot_overruns.get(),
                migrations_in: s.migrations_in.get(),
                migrations_out: s.migrations_out.get(),
                imbalance_milli: s.imbalance_milli.get(),
                latency: s.process.snapshot(),
                lateness: s.lateness.snapshot(),
            })
            .collect();
        let mut admit = LogHistogram::new();
        let mut process = LogHistogram::new();
        let mut retire = LogHistogram::new();
        let mut lateness = LogHistogram::new();
        for s in &self.shards {
            admit.merge(&s.admit.snapshot());
            process.merge(&s.process.snapshot());
            retire.merge(&s.retire.snapshot());
            lateness.merge(&s.lateness.snapshot());
        }
        RegistrySnapshot {
            shards,
            ingest_decode: self.ingest_decode.snapshot(),
            admit,
            process,
            retire,
            lateness,
            rejects: self.rejects(),
            retired: self.retired.get(),
            migrations: self.migrations.get(),
            snapshot_bytes: self.snapshot_bytes.get(),
            snapshot_duration_ns: self.snapshot_duration_ns.get(),
            restored_sessions: self.restored_sessions.get(),
        }
    }
}

/// Position of `reason` in [`RejectReason::ALL`] (the wire and
/// exposition ordering).
pub fn reject_index(reason: RejectReason) -> usize {
    RejectReason::ALL
        .iter()
        .position(|r| *r == reason)
        .expect("RejectReason::ALL is exhaustive")
}

/// Point-in-time copy of one shard's instruments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Resident sessions at scrape time.
    pub sessions: u64,
    /// Slots stepped since start.
    pub slots: u64,
    /// Slices delivered to playout since start.
    pub played_slices: u64,
    /// Bytes sent over the shard link since start.
    pub sent_bytes: u64,
    /// Slots that finished past their deadline.
    pub deadline_misses: u64,
    /// Slots whose work alone exceeded the period.
    pub slot_overruns: u64,
    /// Sessions migrated into this shard.
    pub migrations_in: u64,
    /// Sessions migrated out of this shard.
    pub migrations_out: u64,
    /// Rebalancer cost-over-mean gauge (milli-units).
    pub imbalance_milli: u64,
    /// `process_slot` latency distribution (ns).
    pub latency: LogHistogram,
    /// Lateness past missed deadlines (ns).
    pub lateness: LogHistogram,
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Per-shard snapshots, shard 0 first.
    pub shards: Vec<ShardSnapshot>,
    /// Ingest frame-decode latency (ns), daemon-wide.
    pub ingest_decode: LogHistogram,
    /// Command-apply latency (ns), merged across shards.
    pub admit: LogHistogram,
    /// `process_slot` latency (ns), merged across shards.
    pub process: LogHistogram,
    /// Retirement-harvest latency (ns), merged across shards.
    pub retire: LogHistogram,
    /// Deadline lateness (ns), merged across shards.
    pub lateness: LogHistogram,
    /// Reject counts in [`RejectReason::ALL`] order.
    pub rejects: [u64; RejectReason::ALL.len()],
    /// Sessions fully retired and harvested.
    pub retired: u64,
    /// Sessions migrated between shards by the rebalancer.
    pub migrations: u64,
    /// Bytes written by snapshot checkpoints, cumulative.
    pub snapshot_bytes: u64,
    /// Wall nanoseconds spent building snapshots, cumulative.
    pub snapshot_duration_ns: u64,
    /// Sessions restored from a snapshot at startup.
    pub restored_sessions: u64,
}

impl RegistrySnapshot {
    /// Total slots stepped across all shards.
    pub fn total_slots(&self) -> u64 {
        self.shards.iter().map(|s| s.slots).sum()
    }

    /// Total deadline misses across all shards.
    pub fn total_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.deadline_misses).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_indexing_is_stable() {
        for (i, r) in RejectReason::ALL.into_iter().enumerate() {
            assert_eq!(reject_index(r), i);
        }
    }

    #[test]
    fn snapshot_reflects_writes() {
        let reg = Registry::new(2);
        let s0 = reg.shard(0);
        s0.slots.add(10);
        s0.sessions.set(3);
        s0.process.record(500);
        s0.deadline_misses.inc();
        s0.lateness.record(1200);
        reg.shard(1).slots.add(4);
        reg.record_reject(RejectReason::Backpressure);
        reg.record_reject(RejectReason::Backpressure);
        reg.record_reject(RejectReason::Infeasible);
        reg.retired.add(7);
        reg.ingest_decode.record(90);

        let snap = reg.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.shards[0].slots, 10);
        assert_eq!(snap.shards[0].sessions, 3);
        assert_eq!(snap.shards[1].slots, 4);
        assert_eq!(snap.total_slots(), 14);
        assert_eq!(snap.total_misses(), 1);
        assert_eq!(snap.rejects[reject_index(RejectReason::Backpressure)], 2);
        assert_eq!(snap.rejects[reject_index(RejectReason::Infeasible)], 1);
        assert_eq!(snap.retired, 7);
        assert_eq!(snap.process.count(), 1);
        assert_eq!(snap.process.max(), 500);
        assert_eq!(snap.lateness.max(), 1200);
        assert_eq!(snap.ingest_decode.count(), 1);
    }
}
