//! Prometheus-style text exposition, hand-rolled (no deps).
//!
//! Format: `# TYPE` comment lines followed by
//! `name{label="v",...} value` samples, one per line, newline
//! terminated. Quantiles are exposed the `summary` way — a `quantile`
//! label on the base metric plus `_count` and `_max` companions —
//! computed from [`LogHistogram`] snapshots at scrape time. An empty
//! histogram exposes `_count 0` and omits quantile lines (the
//! histogram's 0-on-empty quantile would otherwise read as a real
//! measurement; callers distinguish via `_count`, as documented on
//! [`LogHistogram::quantile`]).

use std::fmt::Write as _;

use rts_obs::{LogHistogram, RejectReason};

use crate::registry::{RegistrySnapshot, STAGES};

/// The quantiles every summary exposes.
pub const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

fn counter(out: &mut String, name: &str, labels: &str, value: u64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

fn summary(out: &mut String, name: &str, labels: &str, h: &LogHistogram) {
    let sep = if labels.is_empty() { "" } else { "," };
    if h.count() > 0 {
        for (q, qs) in QUANTILES {
            let _ = writeln!(
                out,
                "{name}{{{labels}{sep}quantile=\"{qs}\"}} {}",
                h.quantile(q)
            );
        }
        counter(out, &format!("{name}_max"), labels, h.max());
    }
    counter(out, &format!("{name}_count"), labels, h.count());
}

/// Render a registry snapshot as exposition text.
pub fn render_exposition(snap: &RegistrySnapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# TYPE smoothd_sessions gauge\n");
    out.push_str("# TYPE smoothd_slots_total counter\n");
    out.push_str("# TYPE smoothd_played_slices_total counter\n");
    out.push_str("# TYPE smoothd_sent_bytes_total counter\n");
    out.push_str("# TYPE smoothd_deadline_miss_total counter\n");
    out.push_str("# TYPE smoothd_slot_overrun_total counter\n");
    out.push_str("# TYPE smoothd_migrations_in_total counter\n");
    out.push_str("# TYPE smoothd_migrations_out_total counter\n");
    out.push_str("# TYPE smoothd_imbalance_milli gauge\n");
    out.push_str("# TYPE smoothd_slot_latency_ns summary\n");
    for s in &snap.shards {
        let labels = format!("shard=\"{}\"", s.shard);
        counter(&mut out, "smoothd_sessions", &labels, s.sessions);
        counter(&mut out, "smoothd_slots_total", &labels, s.slots);
        counter(&mut out, "smoothd_played_slices_total", &labels, s.played_slices);
        counter(&mut out, "smoothd_sent_bytes_total", &labels, s.sent_bytes);
        counter(&mut out, "smoothd_deadline_miss_total", &labels, s.deadline_misses);
        counter(&mut out, "smoothd_slot_overrun_total", &labels, s.slot_overruns);
        counter(&mut out, "smoothd_migrations_in_total", &labels, s.migrations_in);
        counter(&mut out, "smoothd_migrations_out_total", &labels, s.migrations_out);
        counter(&mut out, "smoothd_imbalance_milli", &labels, s.imbalance_milli);
        summary(&mut out, "smoothd_slot_latency_ns", &labels, &s.latency);
    }
    out.push_str("# TYPE smoothd_stage_ns summary\n");
    let stages = [&snap.ingest_decode, &snap.admit, &snap.process, &snap.retire];
    for (name, h) in STAGES.iter().zip(stages) {
        summary(&mut out, "smoothd_stage_ns", &format!("stage=\"{name}\""), h);
    }
    out.push_str("# TYPE smoothd_lateness_ns summary\n");
    summary(&mut out, "smoothd_lateness_ns", "", &snap.lateness);
    out.push_str("# TYPE smoothd_rejects_total counter\n");
    for (reason, &n) in RejectReason::ALL.iter().zip(&snap.rejects) {
        counter(
            &mut out,
            "smoothd_rejects_total",
            &format!("reason=\"{}\"", reason.name()),
            n,
        );
    }
    out.push_str("# TYPE smoothd_retired_total counter\n");
    counter(&mut out, "smoothd_retired_total", "", snap.retired);
    out.push_str("# TYPE smoothd_migrations_total counter\n");
    counter(&mut out, "smoothd_migrations_total", "", snap.migrations);
    out.push_str("# TYPE smoothd_snapshot_bytes_total counter\n");
    counter(&mut out, "smoothd_snapshot_bytes_total", "", snap.snapshot_bytes);
    out.push_str("# TYPE smoothd_snapshot_duration_ns_total counter\n");
    counter(
        &mut out,
        "smoothd_snapshot_duration_ns_total",
        "",
        snap.snapshot_duration_ns,
    );
    out.push_str("# TYPE smoothd_restored_sessions_total counter\n");
    counter(
        &mut out,
        "smoothd_restored_sessions_total",
        "",
        snap.restored_sessions,
    );
    out
}

/// Parse exposition text back into `(series, value)` pairs, where
/// `series` is the metric name with its label set attached verbatim
/// (e.g. `smoothd_slots_total{shard="0"}`). Used by tests and the
/// smoke harness to assert the format stays machine-readable; not a
/// full Prometheus parser.
pub fn parse_exposition(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let split_at = match line.rfind(' ') {
            Some(i) => i,
            None => return Err(format!("line {}: no value: {line:?}", lineno + 1)),
        };
        let (series, value) = line.split_at(split_at);
        let series = series.trim_end();
        if series.is_empty() {
            return Err(format!("line {}: empty series name", lineno + 1));
        }
        if let Some(open) = series.find('{') {
            if !series.ends_with('}') {
                return Err(format!("line {}: unterminated label set", lineno + 1));
            }
            let name = &series[..open];
            if name.is_empty() {
                return Err(format!("line {}: empty metric name", lineno + 1));
            }
        }
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad value: {e}", lineno + 1))?;
        out.push((series.to_string(), value));
    }
    Ok(out)
}

/// Look up one series by exact name (with labels) in parsed output.
pub fn series_value(parsed: &[(String, f64)], series: &str) -> Option<f64> {
    parsed
        .iter()
        .find(|(s, _)| s == series)
        .map(|&(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use rts_obs::RejectReason;

    fn sample_snapshot() -> RegistrySnapshot {
        let reg = Registry::new(2);
        let s0 = reg.shard(0);
        s0.sessions.set(5);
        s0.slots.add(100);
        s0.played_slices.add(400);
        s0.sent_bytes.add(12800);
        s0.deadline_misses.add(2);
        s0.lateness.record(1500);
        s0.lateness.record(2500);
        for v in [100u64, 200, 300, 400] {
            s0.process.record(v);
        }
        s0.admit.record(50);
        s0.retire.record(75);
        reg.ingest_decode.record(30);
        reg.record_reject(RejectReason::Backpressure);
        reg.retired.add(9);
        reg.migrations.add(3);
        s0.migrations_out.add(3);
        reg.shard(1).migrations_in.add(3);
        s0.imbalance_milli.set(1400);
        reg.snapshot_bytes.add(4096);
        reg.snapshot_duration_ns.add(88_000);
        reg.restored_sessions.add(6);
        reg.snapshot()
    }

    #[test]
    fn exposition_round_trips_through_parser() {
        let snap = sample_snapshot();
        let text = render_exposition(&snap);
        let parsed = parse_exposition(&text).expect("own output must parse");
        assert_eq!(
            series_value(&parsed, "smoothd_slots_total{shard=\"0\"}"),
            Some(100.0)
        );
        assert_eq!(
            series_value(&parsed, "smoothd_sessions{shard=\"0\"}"),
            Some(5.0)
        );
        assert_eq!(
            series_value(&parsed, "smoothd_deadline_miss_total{shard=\"0\"}"),
            Some(2.0)
        );
        assert_eq!(
            series_value(&parsed, "smoothd_rejects_total{reason=\"backpressure\"}"),
            Some(1.0)
        );
        assert_eq!(series_value(&parsed, "smoothd_retired_total"), Some(9.0));
        assert_eq!(series_value(&parsed, "smoothd_migrations_total"), Some(3.0));
        assert_eq!(
            series_value(&parsed, "smoothd_migrations_out_total{shard=\"0\"}"),
            Some(3.0)
        );
        assert_eq!(
            series_value(&parsed, "smoothd_migrations_in_total{shard=\"1\"}"),
            Some(3.0)
        );
        assert_eq!(
            series_value(&parsed, "smoothd_imbalance_milli{shard=\"0\"}"),
            Some(1400.0)
        );
        assert_eq!(
            series_value(&parsed, "smoothd_slot_latency_ns_count{shard=\"0\"}"),
            Some(4.0)
        );
        assert!(series_value(
            &parsed,
            "smoothd_slot_latency_ns{shard=\"0\",quantile=\"0.5\"}"
        )
        .is_some());
        assert_eq!(
            series_value(&parsed, "smoothd_stage_ns_count{stage=\"ingest-decode\"}"),
            Some(1.0)
        );
        assert_eq!(
            series_value(&parsed, "smoothd_snapshot_bytes_total"),
            Some(4096.0)
        );
        assert_eq!(
            series_value(&parsed, "smoothd_snapshot_duration_ns_total"),
            Some(88000.0)
        );
        assert_eq!(
            series_value(&parsed, "smoothd_restored_sessions_total"),
            Some(6.0)
        );
    }

    #[test]
    fn empty_histograms_expose_count_but_no_quantiles() {
        let reg = Registry::new(1);
        let text = render_exposition(&reg.snapshot());
        assert!(text.contains("smoothd_slot_latency_ns_count{shard=\"0\"} 0"));
        assert!(!text.contains("quantile=\"0.5\"}"), "{text}");
        parse_exposition(&text).expect("empty registry output must parse");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_exposition("metric_without_value").is_err());
        assert!(parse_exposition("name{unterminated 3").is_err());
        assert!(parse_exposition("series notanumber").is_err());
        assert!(parse_exposition("# just a comment\n").unwrap().is_empty());
    }
}
