//! Slot pacing: the absolute-deadline clock that keeps a shard's slot
//! period honest.
//!
//! The paper's guarantees are per-slot — every bound is a function of
//! what happens inside one length-`D` window — so the wall-clock
//! length of a slot matters. The naive pacing the daemon started with
//! (`sleep(interval)` *after* each slot's work) drifts: the realized
//! period is `work + interval`, so a loaded shard's slots stretch and
//! the configured rate silently erodes. [`SlotClock`] instead keeps an
//! absolute deadline `next = arm_time + k·period` and sleeps only the
//! *remaining* time, so per-slot work is absorbed rather than added —
//! and when work exceeds the period it records a deadline miss with
//! the measured lateness instead of letting errors compound.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A time source the slot clock paces against.
///
/// Production uses [`MonotonicClock`]; tests use [`ManualClock`] so
/// pacing behavior (drift vs deadline-holding) is checked
/// deterministically, without real sleeps.
pub trait Clock {
    /// Monotone elapsed time since an arbitrary epoch.
    fn now(&self) -> Duration;
    /// Block (or pretend to) for `d`.
    fn sleep(&self, d: Duration);
}

/// Wall-clock time via [`Instant`], epoch at construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A deterministic clock for tests: time only moves when the test (or
/// a `sleep`) advances it. Shared-state via atomics so a clone handed
/// to the code under test stays in step with the test's copy.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Move time forward by `d` (models work being done).
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// How (or whether) the worker paces its slot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotPacing {
    /// Step as fast as possible (batch mode, drains, tests).
    Free,
    /// Legacy post-slot sleep: realized period = work + interval.
    /// Kept so the drift regression test can compare against
    /// [`SlotPacing::Deadline`]; new configs should prefer `Deadline`.
    Sleep(Duration),
    /// Absolute-deadline pacing: realized period = `max(work, period)`,
    /// with misses counted instead of compounding.
    Deadline(Duration),
}

impl SlotPacing {
    /// The configured slot period, if any.
    pub fn period(self) -> Option<Duration> {
        match self {
            SlotPacing::Free => None,
            SlotPacing::Sleep(d) | SlotPacing::Deadline(d) => Some(d),
        }
    }
}

/// What [`SlotClock::pace`] observed for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotOutcome {
    /// The slot finished after its deadline.
    pub missed: bool,
    /// How far past the deadline it finished (zero when on time).
    pub lateness: Duration,
}

/// Per-worker pacing state: the next absolute deadline.
///
/// Protocol: call [`arm`](SlotClock::arm) when the shard transitions
/// idle → busy (so deadlines are anchored to when work actually
/// resumes, not to a stale epoch), then [`pace`](SlotClock::pace) once
/// after each slot's work. On a miss the clock re-anchors
/// (`next = now + period`) rather than trying to "catch up" with
/// back-to-back slots — slot count is not a contract here, period is.
#[derive(Debug)]
pub struct SlotClock<C: Clock> {
    clock: C,
    pacing: SlotPacing,
    next: Duration,
}

impl<C: Clock> SlotClock<C> {
    /// A clock for one worker. Armed immediately.
    pub fn new(clock: C, pacing: SlotPacing) -> Self {
        let mut sc = SlotClock {
            clock,
            pacing,
            next: Duration::ZERO,
        };
        sc.arm();
        sc
    }

    /// The pacing mode this clock runs.
    pub fn pacing(&self) -> SlotPacing {
        self.pacing
    }

    /// Re-anchor the deadline to `now + period`. Call on an idle → busy
    /// transition so time spent parked waiting for commands is not
    /// charged as lateness.
    pub fn arm(&mut self) {
        if let SlotPacing::Deadline(period) = self.pacing {
            self.next = self.clock.now() + period;
        }
    }

    /// Pace after one slot's work. Sleeps until the deadline (or not at
    /// all) and reports whether the deadline was missed.
    pub fn pace(&mut self) -> SlotOutcome {
        match self.pacing {
            SlotPacing::Free => SlotOutcome::default(),
            SlotPacing::Sleep(interval) => {
                self.clock.sleep(interval);
                SlotOutcome::default()
            }
            SlotPacing::Deadline(period) => {
                let now = self.clock.now();
                if now <= self.next {
                    self.clock.sleep(self.next - now);
                    self.next += period;
                    SlotOutcome::default()
                } else {
                    let lateness = now - self.next;
                    self.next = now + period;
                    SlotOutcome {
                        missed: true,
                        lateness,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `Clock` view onto a shared `ManualClock`.
    #[derive(Clone)]
    struct Shared(Arc<ManualClock>);

    impl Clock for Shared {
        fn now(&self) -> Duration {
            self.0.now()
        }
        fn sleep(&self, d: Duration) {
            self.0.sleep(d);
        }
    }

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn legacy_sleep_drifts_by_work_time() {
        let clock = Arc::new(ManualClock::new());
        let mut sc = SlotClock::new(Shared(Arc::clone(&clock)), SlotPacing::Sleep(10 * MS));
        let mut periods = Vec::new();
        for _ in 0..5 {
            let start = clock.now();
            clock.advance(3 * MS); // slot work
            sc.pace();
            periods.push(clock.now() - start);
        }
        // period = work + interval: the documented drift.
        assert!(periods.iter().all(|&p| p == 13 * MS), "{periods:?}");
    }

    #[test]
    fn deadline_pacing_holds_the_period() {
        let clock = Arc::new(ManualClock::new());
        let mut sc = SlotClock::new(Shared(Arc::clone(&clock)), SlotPacing::Deadline(10 * MS));
        for work in [0u32, 3, 7, 1, 9] {
            let start = clock.now();
            clock.advance(work * MS);
            let out = sc.pace();
            assert!(!out.missed);
            assert_eq!(clock.now() - start, 10 * MS, "work={work}ms");
        }
    }

    #[test]
    fn overrun_records_miss_and_reanchors() {
        let clock = Arc::new(ManualClock::new());
        let mut sc = SlotClock::new(Shared(Arc::clone(&clock)), SlotPacing::Deadline(10 * MS));
        clock.advance(25 * MS); // 15ms past the 10ms deadline
        let out = sc.pace();
        assert!(out.missed);
        assert_eq!(out.lateness, 15 * MS);
        // Re-anchored: the next slot gets a full period again.
        clock.advance(4 * MS);
        let out = sc.pace();
        assert!(!out.missed);
        assert_eq!(clock.now(), Duration::from_millis(35));
    }

    #[test]
    fn arm_forgives_idle_time() {
        let clock = Arc::new(ManualClock::new());
        let mut sc = SlotClock::new(Shared(Arc::clone(&clock)), SlotPacing::Deadline(10 * MS));
        clock.advance(500 * MS); // parked idle, no work
        sc.arm();
        clock.advance(2 * MS);
        let out = sc.pace();
        assert!(!out.missed, "idle time must not count as lateness");
    }

    #[test]
    fn free_and_sleep_never_miss() {
        let clock = Arc::new(ManualClock::new());
        let mut free = SlotClock::new(Shared(Arc::clone(&clock)), SlotPacing::Free);
        clock.advance(1000 * MS);
        assert_eq!(free.pace(), SlotOutcome::default());
        assert_eq!(SlotPacing::Free.period(), None);
        assert_eq!(SlotPacing::Deadline(MS).period(), Some(MS));
    }
}
