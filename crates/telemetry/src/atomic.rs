//! Lock-free instruments: atomic counters and log-bucketed histograms.
//!
//! The data plane (shard workers, the ingest loop) writes these with
//! `Relaxed` atomics and never allocates or blocks; a scraper thread
//! reads them at any time without stopping writers. Snapshots are
//! *racy but monotone*: a snapshot taken mid-record may see a bucket
//! increment without the matching `sum` update (or vice versa), but
//! every field individually never goes backwards, and a snapshot taken
//! while no writer is active equals the histogram a single-threaded
//! [`LogHistogram`] would have produced from the same samples — the
//! `snapshot-equals-live` oracle in `rts-check` pins this down.

use std::sync::atomic::{AtomicU64, Ordering};

use rts_obs::LogHistogram;

/// A monotone event counter writable from many threads.
#[derive(Debug, Default)]
pub struct AtomicCounter(AtomicU64);

impl AtomicCounter {
    /// A counter at zero.
    pub const fn new() -> Self {
        AtomicCounter(AtomicU64::new(0))
    }

    /// Add `n` occurrences.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one occurrence.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrite the value (gauge semantics, e.g. resident sessions).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free mirror of [`LogHistogram`]: a fixed-size array of
/// atomic bucket counters (one per [`LogHistogram::BUCKETS`] slot)
/// plus the exact `count`/`sum`/`min`/`max` sidecar.
///
/// `record` is a handful of `Relaxed` read-modify-write ops and never
/// allocates — the bucket array is sized for the whole `u64` range up
/// front (~7.6 KiB per histogram), so the hot path has no resize
/// branch. `sum` is kept in a `u64`: the recorded values here are
/// nanosecond durations of per-slot work, so even 2^32 samples of
/// 4-second slots fit without overflow.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram with every bucket allocated.
    pub fn new() -> Self {
        let buckets = (0..LogHistogram::BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        AtomicHistogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Allocation-free; safe from any thread.
    pub fn record(&self, value: u64) {
        self.buckets[LogHistogram::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Fold a plain histogram's contents in (used when a worker already
    /// aggregated locally and flushes in bulk).
    pub fn merge(&self, other: &LogHistogram) {
        if other.count() == 0 {
            return;
        }
        for (idx, &n) in other.buckets().iter().enumerate() {
            if n > 0 {
                self.buckets[idx].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum() as u64, Ordering::Relaxed);
        self.min.fetch_min(other.min(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Materialize a plain, mergeable [`LogHistogram`] from the live
    /// atomics. The bucket array is read first and the sidecar count is
    /// re-derived from it, so the snapshot is always internally
    /// consistent even if writers raced the scrape.
    pub fn snapshot(&self) -> LogHistogram {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return LogHistogram::new();
        }
        let sum = self.sum.load(Ordering::Relaxed) as u128;
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        LogHistogram::from_parts(buckets, count, sum, min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_set_get() {
        let c = AtomicCounter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.set(2);
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn snapshot_equals_live_single_threaded() {
        let a = AtomicHistogram::new();
        let mut live = LogHistogram::new();
        for v in [0u64, 1, 17, 17, 4096, 1 << 33] {
            a.record(v);
            live.record(v);
        }
        assert_eq!(a.snapshot(), live);
    }

    #[test]
    fn empty_snapshot_is_empty() {
        let a = AtomicHistogram::new();
        assert_eq!(a.snapshot(), LogHistogram::new());
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn merge_matches_plain_merge() {
        let a = AtomicHistogram::new();
        let mut x = LogHistogram::new();
        let mut y = LogHistogram::new();
        for v in [3u64, 9, 200] {
            x.record(v);
        }
        for v in [5u64, 5, 1 << 20] {
            y.record(v);
        }
        a.merge(&x);
        a.merge(&y);
        let mut expect = x.clone();
        expect.merge(&y);
        assert_eq!(a.snapshot(), expect);
    }

    #[test]
    fn concurrent_records_all_land() {
        use std::sync::Arc;
        let a = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        a.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = a.snapshot();
        assert_eq!(snap.count(), 4000);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 3999);
    }
}
