//! End-to-end tests of the actual `smoothctl` binary (spawned as a
//! process, exercising argument parsing, exit codes, and I/O).

use std::process::Command;

fn smoothctl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_smoothctl"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("smoothctl_bin_{name}_{}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn help_exits_zero() {
    let out = smoothctl(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn no_arguments_is_a_usage_error_with_exit_2() {
    let out = smoothctl(&[]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing subcommand"));
    assert!(err.contains("USAGE"), "usage text printed on stderr");
}

#[test]
fn unknown_subcommand_exit_2() {
    let out = smoothctl(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn full_workflow_through_the_binary() {
    let trace = tmp("flow");
    let gen = smoothctl(&["generate", "--out", &trace, "--frames", "80", "--seed", "3"]);
    assert!(gen.status.success(), "{:?}", gen);

    let stats = smoothctl(&["stats", &trace]);
    assert!(stats.status.success());
    assert!(String::from_utf8_lossy(&stats.stdout).contains("avg rate"));

    let plan = smoothctl(&["plan", &trace, "--delay", "6"]);
    assert!(plan.status.success());
    assert!(String::from_utf8_lossy(&plan.stdout).contains("balanced"));

    let sim = smoothctl(&[
        "simulate", &trace, "--buffer", "300", "--rate", "50", "--delay", "6",
    ]);
    assert!(sim.status.success());
    assert!(String::from_utf8_lossy(&sim.stdout).contains("weighted loss"));

    let _ = std::fs::remove_file(&trace);
}

#[test]
fn io_error_reports_the_path() {
    let out = smoothctl(&["stats", "/no/such/file.trace"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("/no/such/file.trace"));
}
