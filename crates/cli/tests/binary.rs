//! End-to-end tests of the actual `smoothctl` binary (spawned as a
//! process, exercising argument parsing, exit codes, and I/O).

use std::process::Command;

fn smoothctl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_smoothctl"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("smoothctl_bin_{name}_{}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn help_exits_zero() {
    let out = smoothctl(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn no_arguments_is_a_usage_error_with_exit_2() {
    let out = smoothctl(&[]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing subcommand"));
    assert!(err.contains("USAGE"), "usage text printed on stderr");
}

#[test]
fn unknown_subcommand_exit_2() {
    let out = smoothctl(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn full_workflow_through_the_binary() {
    let trace = tmp("flow");
    let gen = smoothctl(&["generate", "--out", &trace, "--frames", "80", "--seed", "3"]);
    assert!(gen.status.success(), "{:?}", gen);

    let stats = smoothctl(&["stats", &trace]);
    assert!(stats.status.success());
    assert!(String::from_utf8_lossy(&stats.stdout).contains("avg rate"));

    let plan = smoothctl(&["plan", &trace, "--delay", "6"]);
    assert!(plan.status.success());
    assert!(String::from_utf8_lossy(&plan.stdout).contains("balanced"));

    let sim = smoothctl(&[
        "simulate", &trace, "--buffer", "300", "--rate", "50", "--delay", "6",
    ]);
    assert!(sim.status.success());
    assert!(String::from_utf8_lossy(&sim.stdout).contains("weighted loss"));

    let _ = std::fs::remove_file(&trace);
}

#[test]
fn io_error_reports_the_path_and_exits_1() {
    let out = smoothctl(&["stats", "/no/such/file.trace"]);
    assert_eq!(out.status.code(), Some(1), "I/O failures are not usage errors");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("/no/such/file.trace"), "{err}");
    assert!(!err.contains("USAGE"), "no usage dump for runtime failures");
}

#[test]
fn obs_on_missing_trace_reports_the_path_and_exits_1() {
    let out = smoothctl(&["obs", "/no/such/events.jsonl"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("/no/such/events.jsonl"), "{err}");
}

#[test]
fn trace_out_roundtrips_through_obs() {
    let trace = tmp("obs_flow");
    let events = tmp("obs_flow_events");
    let gen = smoothctl(&["generate", "--out", &trace, "--frames", "50", "--seed", "5"]);
    assert!(gen.status.success(), "{gen:?}");
    let sim = smoothctl(&[
        "simulate", &trace, "--buffer", "300", "--rate", "50", "--delay", "6", "--trace-out",
        &events,
    ]);
    assert!(sim.status.success(), "{sim:?}");
    let obs = smoothctl(&["obs", &events]);
    assert!(obs.status.success(), "{obs:?}");
    let summary = String::from_utf8_lossy(&obs.stdout);
    assert!(summary.contains("played:"), "{summary}");
    assert!(summary.contains("sojourn:"), "{summary}");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&events);
}

#[test]
fn results_dir_redirects_relative_sinks() {
    let trace = tmp("results_dir_trace");
    let dir = tmp("results_dir_out");
    std::fs::create_dir_all(&dir).unwrap();
    let gen = smoothctl(&["generate", "--out", &trace, "--frames", "30"]);
    assert!(gen.status.success());
    let sim = Command::new(env!("CARGO_BIN_EXE_smoothctl"))
        .args([
            "simulate", &trace, "--buffer", "200", "--rate", "40", "--delay", "4", "--trace-out",
            "events.jsonl",
        ])
        .env("RESULTS_DIR", &dir)
        .output()
        .expect("binary runs");
    assert!(sim.status.success(), "{sim:?}");
    let written = std::path::Path::new(&dir).join("events.jsonl");
    assert!(written.is_file(), "sink lands under RESULTS_DIR");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_dir_all(&dir);
}
