//! The `smoothctl` subcommands as pure, testable functions.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};

use rts_core::policy::{DropPolicy, GreedyByteValue, HeadDrop, RandomDrop, TailDrop};
use rts_core::tradeoff::{SmoothingParams, TradeoffClass};
use rts_core::ResyncPolicy;
use rts_faults::{simulate_faulted_probed, FaultPlan};
use rts_mux::{
    GreedyAcrossSessions, LinkScheduler, Mux, MuxReport, RoundRobin, SessionSpec, WeightedFair,
};
use rts_obs::{Collector, CsvTimeSeries, Event, JsonlWriter, NoopProbe, Probe};
use rts_offline::{min_lossless_delay, min_lossless_rate, peak_rate};
use rts_sim::{simulate, simulate_probed, SimConfig, SimReport};
use rts_stream::gen::{cbr, markov_onoff, MarkovOnOffConfig, MpegConfig, MpegSource};
use rts_stream::slicing::Slicing;
use rts_stream::weight::WeightAssignment;
use rts_stream::{textio, InputStream};

use crate::{Args, CliError, USAGE};

/// Executes a parsed command line against the filesystem and returns
/// the text to print.
///
/// # Errors
///
/// Returns [`CliError`] for usage problems, unreadable files, or
/// malformed traces.
pub fn run(args: &Args) -> Result<String, CliError> {
    match args.command() {
        "generate" => generate(args),
        "convert" => convert(args),
        "merge" => merge_cmd(args),
        "stats" => stats(args),
        "plan" => plan(args),
        "simulate" => simulate_cmd(args),
        "mux" => mux_cmd(args),
        "obs" => obs_cmd(args),
        "frontier" => frontier(args),
        "optimal" => optimal_cmd(args),
        "check" => check_cmd(args),
        "serve" => crate::serve::serve_cmd(args),
        "top" => crate::top::top_cmd(args),
        "snapshot" => crate::snapshot::snapshot_cmd(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::usage(format!(
            "unknown subcommand '{other}' (try 'smoothctl help')"
        ))),
    }
}

fn load(path: &str) -> Result<InputStream, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
    Ok(textio::parse_stream(&text)?)
}

/// The optional observability sinks behind `--trace-out` (JSONL event
/// trace) and `--metrics-out` (per-slot CSV time series). Relative
/// paths land under `$RESULTS_DIR` when that is set.
struct OutProbe {
    trace: Option<(String, JsonlWriter<BufWriter<File>>)>,
    series: Option<(String, CsvTimeSeries<BufWriter<File>>)>,
}

impl OutProbe {
    fn from_args(args: &Args) -> Result<OutProbe, CliError> {
        let open = |path: &str| -> Result<(String, BufWriter<File>), CliError> {
            let resolved = rts_obs::resolve_out_path(std::path::Path::new(path))
                .display()
                .to_string();
            let sink = rts_obs::create_sink(std::path::Path::new(path))
                .map_err(|e| CliError::io(&resolved, e))?;
            Ok((resolved, sink))
        };
        let trace = match args.opt("trace-out") {
            Some(p) => {
                let (resolved, sink) = open(p)?;
                Some((resolved, JsonlWriter::new(sink)))
            }
            None => None,
        };
        let series = match args.opt("metrics-out") {
            Some(p) => {
                let (resolved, sink) = open(p)?;
                Some((resolved, CsvTimeSeries::new(sink)))
            }
            None => None,
        };
        Ok(OutProbe { trace, series })
    }

    /// Flushes both sinks, surfacing any write error latched during the
    /// run, and appends a "wrote ..." line per sink to `out`.
    fn finish(self, out: &mut String) -> Result<(), CliError> {
        if let Some((path, writer)) = self.trace {
            let events = writer.lines();
            writer
                .finish()
                .and_then(|mut w| w.flush())
                .map_err(|e| CliError::io(&path, e))?;
            let _ = writeln!(out, "trace:         wrote {path} ({events} events)");
        }
        if let Some((path, writer)) = self.series {
            let rows = writer.rows();
            writer
                .finish()
                .and_then(|mut w| w.flush())
                .map_err(|e| CliError::io(&path, e))?;
            let _ = writeln!(out, "metrics:       wrote {path} ({rows} slots)");
        }
        Ok(())
    }
}

impl Probe for OutProbe {
    fn enabled(&self) -> bool {
        self.trace.is_some() || self.series.is_some()
    }

    fn on_event(&mut self, event: &Event) {
        if let Some((_, w)) = &mut self.trace {
            w.on_event(event);
        }
        if let Some((_, w)) = &mut self.series {
            w.on_event(event);
        }
    }
}

fn obs_cmd(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "event-trace file (JSONL)")?;
    let file = File::open(path).map_err(|e| CliError::io(path, e))?;
    let mut collector = Collector::new();
    let events = rts_obs::replay(std::io::BufReader::new(file), &mut collector)
        .map_err(|e| CliError::events(path, e))?;
    let mut out = format!("replayed {path}: {events} events\n");
    out.push_str(&collector.summary());
    Ok(out)
}

fn parse_slicing(spec: &str) -> Result<Slicing, CliError> {
    match spec {
        "byte" => Ok(Slicing::PerByte),
        "frame" => Ok(Slicing::WholeFrame),
        other => match other.strip_prefix("chunk:") {
            Some(n) => {
                let n: u64 = n
                    .parse()
                    .map_err(|_| CliError::usage(format!("bad chunk size in {other:?}")))?;
                if n == 0 {
                    return Err(CliError::usage("chunk size must be positive"));
                }
                Ok(Slicing::Chunks(n))
            }
            None => Err(CliError::usage(format!(
                "unknown slicing {other:?} (byte|frame|chunk:N)"
            ))),
        },
    }
}

fn parse_weights(spec: &str) -> Result<WeightAssignment, CliError> {
    match spec {
        "mpeg" => Ok(WeightAssignment::MPEG_12_8_1),
        "uniform" => Ok(WeightAssignment::Uniform(1)),
        "size" => Ok(WeightAssignment::BySize),
        other => Err(CliError::usage(format!(
            "unknown weights {other:?} (mpeg|uniform|size)"
        ))),
    }
}

fn generate(args: &Args) -> Result<String, CliError> {
    let out = args
        .opt("out")
        .ok_or_else(|| CliError::usage("generate needs --out FILE"))?;
    let frames: usize = args.opt_or("frames", 600)?;
    let seed: u64 = args.opt_or("seed", 1)?;
    let slicing = parse_slicing(args.opt("slicing").unwrap_or("frame"))?;
    let weights = parse_weights(args.opt("weights").unwrap_or("mpeg"))?;
    let trace = match args.opt("kind").unwrap_or("mpeg") {
        "mpeg" => MpegSource::new(MpegConfig::cnn_like(), seed).frames(frames),
        "markov" => markov_onoff(
            MarkovOnOffConfig {
                on_size: args.opt_or("on-size", 80)?,
                off_size: args.opt_or("off-size", 10)?,
                p_on_to_off: 0.05,
                p_off_to_on: 0.02,
            },
            frames,
            seed,
        ),
        "cbr" => cbr(frames, args.opt_or("size", 38)?),
        other => {
            return Err(CliError::usage(format!(
                "unknown kind {other:?} (mpeg|markov|cbr)"
            )))
        }
    };
    let stream = trace.materialize(slicing, weights);
    std::fs::write(out, textio::write_stream(&stream)).map_err(|e| CliError::io(out, e))?;
    Ok(format!(
        "wrote {out}: {} frames, {} slices, {} bytes, weight {}\n",
        stream.frames().len(),
        stream.slice_count(),
        stream.total_bytes(),
        stream.total_weight()
    ))
}

fn convert(args: &Args) -> Result<String, CliError> {
    let input = args.positional(0, "frame-size file")?;
    let out = args
        .opt("out")
        .ok_or_else(|| CliError::usage("convert needs --out FILE"))?;
    let slicing = parse_slicing(args.opt("slicing").unwrap_or("frame"))?;
    let weights = parse_weights(args.opt("weights").unwrap_or("mpeg"))?;
    let text = std::fs::read_to_string(input).map_err(|e| CliError::io(input, e))?;
    let trace = textio::parse_frame_sizes(&text)?;
    let stream = trace.materialize(slicing, weights);
    std::fs::write(out, textio::write_stream(&stream)).map_err(|e| CliError::io(out, e))?;
    Ok(format!(
        "converted {input} -> {out}: {} frames, {} slices, {} bytes\n",
        stream.frames().len(),
        stream.slice_count(),
        stream.total_bytes()
    ))
}

fn merge_cmd(args: &Args) -> Result<String, CliError> {
    let out = args
        .opt("out")
        .ok_or_else(|| CliError::usage("merge needs --out FILE"))?;
    let mut inputs = Vec::new();
    let mut i = 0;
    while let Ok(path) = args.positional(i, "input trace") {
        inputs.push(load(path)?);
        i += 1;
    }
    if inputs.len() < 2 {
        return Err(CliError::usage("merge needs at least two input traces"));
    }
    let merged = rts_stream::merge(&inputs);
    std::fs::write(out, textio::write_stream(&merged.stream)).map_err(|e| CliError::io(out, e))?;
    Ok(format!(
        "merged {} traces -> {out}: {} frames, {} slices, {} bytes\n",
        inputs.len(),
        merged.stream.frames().len(),
        merged.stream.slice_count(),
        merged.stream.total_bytes()
    ))
}

fn stats(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "trace file")?;
    let stream = load(path)?;
    let st = stream.stats();
    let mut out = String::new();
    let _ = writeln!(out, "trace: {path}");
    let _ = writeln!(out, "frames:        {}", st.frame_count);
    let _ = writeln!(out, "slices:        {}", st.slice_count);
    let _ = writeln!(out, "bytes:         {}", st.total_bytes);
    let _ = writeln!(out, "weight:        {}", st.total_weight);
    let _ = writeln!(out, "avg rate:      {:.2} bytes/step", st.average_rate);
    let _ = writeln!(out, "max frame:     {} bytes", st.max_frame_bytes);
    let _ = writeln!(out, "max slice:     {} bytes (Lmax)", st.max_slice_bytes);
    if st.average_rate > 0.0 {
        let _ = writeln!(
            out,
            "peak/mean:     {:.2}",
            st.max_frame_bytes as f64 / st.average_rate
        );
    }
    for kind in rts_stream::FrameKind::MPEG {
        let frac = st.frame_fraction(kind);
        if frac > 0.0 {
            let _ = writeln!(out, "{kind} frames:      {:.1}%", frac * 100.0);
        }
    }
    Ok(out)
}

fn plan(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "trace file")?;
    let stream = load(path)?;
    let link_delay: u64 = args.opt_or("link-delay", 0)?;
    let params = match (
        args.opt_parse::<u64>("delay")?,
        args.opt_parse::<u64>("rate")?,
    ) {
        (Some(d), None) => {
            let rate = min_lossless_rate(&stream, d);
            SmoothingParams::balanced_from_rate_delay(rate.max(1), d, link_delay)
        }
        (None, Some(r)) => {
            let d = min_lossless_delay(&stream, r)
                .ok_or_else(|| CliError::usage("rate below the stream's long-run need"))?;
            SmoothingParams::balanced_from_rate_delay(r, d, link_delay)
        }
        _ => {
            return Err(CliError::usage(
                "plan needs exactly one of --delay D or --rate R",
            ))
        }
    };
    let mut out = String::new();
    let st = stream.stats();
    let _ = writeln!(
        out,
        "trace: {path} (avg {:.1}, peak frame {})",
        st.average_rate,
        peak_rate(&stream)
    );
    let _ = writeln!(out, "lossless plan (B = R*D, Theorem 3.5):");
    let _ = writeln!(out, "  link rate R:       {} bytes/step", params.rate);
    let _ = writeln!(out, "  smoothing delay D: {} steps", params.delay);
    let _ = writeln!(
        out,
        "  buffers B:         {} bytes at server AND client",
        params.buffer
    );
    let _ = writeln!(
        out,
        "  playout latency:   {} steps (P + D)",
        params.playout_latency()
    );
    let class = match params.classify() {
        TradeoffClass::Balanced => "balanced".to_string(),
        TradeoffClass::ExcessDelay { reducible_to } => {
            format!("delay reducible to {reducible_to}")
        }
        TradeoffClass::ExcessBuffer { reducible_to } => {
            format!("buffer reducible to {reducible_to}")
        }
    };
    let _ = writeln!(out, "  classification:    {class}");
    Ok(out)
}

fn report_text(report: &SimReport) -> String {
    let m = &report.metrics;
    let mut out = String::new();
    let _ = writeln!(out, "policy:        {}", report.policy);
    let _ = writeln!(
        out,
        "played:        {} / {} bytes ({} / {} slices)",
        m.played_bytes,
        m.offered_bytes,
        m.played_slices,
        m.played_slices + m.server_dropped_slices + m.client_dropped_slices
    );
    let _ = writeln!(
        out,
        "benefit:       {} / {} (weighted loss {:.2}%)",
        m.benefit,
        m.offered_weight,
        m.weighted_loss() * 100.0
    );
    let _ = writeln!(out, "server drops:  {} slices", m.server_dropped_slices);
    let _ = writeln!(
        out,
        "client drops:  {} slices {:?}",
        m.client_dropped_slices, m.client_drop_reasons
    );
    let server = report.record.server_occupancy_summary();
    let client = report.record.client_occupancy_summary();
    let _ = writeln!(
        out,
        "server occ:    p50 {} / p99 {} / max {}",
        server.p50, server.p99, server.max
    );
    let _ = writeln!(
        out,
        "client occ:    p50 {} / p99 {} / max {}",
        client.p50, client.p99, client.max
    );
    out
}

fn simulate_cmd(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "trace file")?;
    let stream = load(path)?;
    let params = SmoothingParams {
        buffer: args.require("buffer")?,
        rate: args.require("rate")?,
        delay: args.require("delay")?,
        link_delay: args.opt_or("link-delay", 0)?,
    };
    if params.rate == 0 {
        return Err(CliError::usage("--rate must be positive"));
    }
    let seed: u64 = args.opt_or("seed", 0)?;
    let mut config = SimConfig {
        client_capacity: args.opt_parse("client-buffer")?,
        ..SimConfig::new(params)
    };
    if let Some(spec) = args.opt("resync") {
        config = config.with_resync(parse_resync(spec)?);
    }
    let policy = parse_policy_box(args.opt("policy").unwrap_or("greedy"), seed)?;
    let mut probe = OutProbe::from_args(args)?;
    let report = match args.opt("faults") {
        Some(spec) => {
            let plan = FaultPlan::parse(spec, seed).map_err(|e| CliError::usage(e.to_string()))?;
            simulate_faulted_probed(&stream, config, plan, policy, &mut probe)
        }
        None => simulate_probed(&stream, config, policy, &mut probe),
    };
    let mut out = report_text(&report);
    probe.finish(&mut out)?;
    if let Some(path) = args.opt("timeline") {
        let mut csv =
            String::from("time,server_occupancy,client_occupancy,sent_bytes,link_in_flight\n");
        for s in report.record.steps() {
            csv.push_str(&format!(
                "{},{},{},{},{}\n",
                s.time, s.server_occupancy, s.client_occupancy, s.sent_bytes, s.link_in_flight
            ));
        }
        std::fs::write(path, csv).map_err(|e| CliError::io(path, e))?;
        out.push_str(&format!("timeline:      wrote {path}\n"));
    }
    Ok(out)
}

fn parse_policy_box(name: &str, seed: u64) -> Result<Box<dyn DropPolicy>, CliError> {
    match name {
        "greedy" => Ok(Box::new(GreedyByteValue::new())),
        "tail" => Ok(Box::new(TailDrop::new())),
        "head" => Ok(Box::new(HeadDrop::new())),
        "random" => Ok(Box::new(RandomDrop::new(seed))),
        other => Err(CliError::usage(format!(
            "unknown policy {other:?} (greedy|tail|head|random)"
        ))),
    }
}

fn parse_scheduler(name: &str) -> Result<Box<dyn LinkScheduler>, CliError> {
    match name {
        "rr" | "round-robin" => Ok(Box::new(RoundRobin::new())),
        "wfq" | "weighted-fair" => Ok(Box::new(WeightedFair::new())),
        "greedy" => Ok(Box::new(GreedyAcrossSessions::new())),
        other => Err(CliError::usage(format!(
            "unknown scheduler {other:?} (rr|wfq|greedy)"
        ))),
    }
}

fn parse_resync(spec: &str) -> Result<ResyncPolicy, CliError> {
    let bad = || CliError::usage(format!("bad --resync {spec:?} (want SKEW/CATCHUP, e.g. 8/1)"));
    let (skew, catchup) = spec.split_once(['/', ':']).ok_or_else(bad)?;
    let skew: u64 = skew.trim().parse().map_err(|_| bad())?;
    let catchup: u64 = catchup.trim().parse().map_err(|_| bad())?;
    Ok(ResyncPolicy::new(skew, catchup))
}

fn parse_overbook(spec: &str) -> Result<(u64, u64), CliError> {
    let bad = || CliError::usage(format!("bad --overbook {spec:?} (want NUM/DEN, e.g. 5/4)"));
    let (num, den) = spec.split_once(['/', ':']).ok_or_else(bad)?;
    let num: u64 = num.trim().parse().map_err(|_| bad())?;
    let den: u64 = den.trim().parse().map_err(|_| bad())?;
    if den == 0 {
        return Err(CliError::usage("--overbook denominator must be positive"));
    }
    Ok((num, den))
}

fn mux_cmd(args: &Args) -> Result<String, CliError> {
    // Sessions come from trace files, or a generated MPEG-like demo set.
    let mut streams: Vec<(String, InputStream)> = Vec::new();
    let mut i = 0;
    while let Ok(path) = args.positional(i, "input trace") {
        streams.push((path.to_string(), load(path)?));
        i += 1;
    }
    let seed: u64 = args.opt_or("seed", 1)?;
    if streams.is_empty() {
        let k: usize = args.opt_or("sessions", 3)?;
        if k == 0 {
            return Err(CliError::usage("--sessions must be positive"));
        }
        let frames: usize = args.opt_or("frames", 300)?;
        for j in 0..k {
            let stream = MpegSource::new(MpegConfig::cnn_like(), seed + j as u64)
                .frames(frames)
                .materialize(Slicing::PerByte, WeightAssignment::MPEG_12_8_1);
            streams.push((format!("mpeg-{j}"), stream));
        }
    }
    let factor: f64 = args.opt_or("factor", 0.9)?;
    if factor <= 0.0 {
        return Err(CliError::usage("--factor must be positive"));
    }
    let delay: u64 = args.opt_or("delay", 8)?;
    let link_delay: u64 = args.opt_or("link-delay", 0)?;
    let rates: Vec<u64> = streams
        .iter()
        .map(|(_, s)| s.stats().rate_at(factor).max(1))
        .collect();
    let link_rate: u64 = args.opt_or("link-rate", rates.iter().sum())?;
    let (num, den) = parse_overbook(args.opt("overbook").unwrap_or("1/1"))?;
    let total_offered: u64 = streams.iter().map(|(_, s)| s.total_weight()).sum();
    if total_offered == 0 {
        return Err(CliError::usage("all input traces are empty"));
    }
    let faults: Option<FaultPlan> = match args.opt("faults") {
        Some(spec) => {
            Some(FaultPlan::parse(spec, seed).map_err(|e| CliError::usage(e.to_string()))?)
        }
        None => None,
    };
    let resync: Option<ResyncPolicy> = match args.opt("resync") {
        Some(spec) => Some(parse_resync(spec)?),
        None => None,
    };

    // One shared-link run: admit every session, then step to completion.
    let shared = |scheduler: Box<dyn LinkScheduler>,
                  policy_name: &str,
                  probe: &mut dyn Probe|
     -> Result<MuxReport, CliError> {
        let mut mux = Mux::with_overbooking(link_rate, scheduler, num, den);
        for (idx, ((label, s), &r)) in streams.iter().zip(&rates).enumerate() {
            let params = SmoothingParams::balanced_from_rate_delay(r, delay, link_delay);
            let mut spec = SessionSpec::new(s.clone(), params, parse_policy_box(policy_name, seed)?)
                .with_weight(r)
                .with_label(label.clone());
            if let Some(plan) = &faults {
                // Each session gets its own deterministic jitter stream.
                spec = spec.with_faults(plan.clone().with_seed(seed.wrapping_add(idx as u64)));
            }
            if let Some(policy) = resync {
                spec = spec.with_resync(policy);
            }
            mux.admit(spec).map_err(|e| {
                CliError::usage(format!(
                    "session '{label}' rejected: {e} (raise --link-rate or --overbook)"
                ))
            })?;
        }
        Ok(mux.run_probed(&mut &mut *probe))
    };
    // Dedicated baseline: each session alone on a link of its nominal rate.
    let dedicated = |policy_name: &str| -> Result<f64, CliError> {
        let mut delivered = 0u64;
        for ((_, s), &r) in streams.iter().zip(&rates) {
            let params = SmoothingParams::balanced_from_rate_delay(r, delay, link_delay);
            delivered += simulate(s, SimConfig::new(params), parse_policy_box(policy_name, seed)?)
                .metrics
                .benefit;
        }
        Ok(1.0 - delivered as f64 / total_offered as f64)
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "mux: {} sessions, shared link C = {link_rate} (nominal rates {:?}), D = {delay}, \
         admission x{num}/{den}",
        streams.len(),
        rates
    );
    if args.opt("scheduler").is_some() || args.opt("policy").is_some() {
        // Detailed single run.
        let mut probe = OutProbe::from_args(args)?;
        let sched = parse_scheduler(args.opt("scheduler").unwrap_or("rr"))?;
        let policy = args.opt("policy").unwrap_or("greedy");
        let report = shared(sched, policy, &mut probe)?;
        probe.finish(&mut out)?;
        let _ = writeln!(out, "scheduler:     {}", report.scheduler);
        let _ = writeln!(
            out,
            "{:>12} {:>6} {:>8} {:>12} {:>12} {:>8} {:>10} {:>9}",
            "session", "rate", "B", "offered_w", "played_w", "loss%", "drops", "occ/B"
        );
        for (m, &r) in report.sessions.iter().zip(&rates) {
            let _ = writeln!(
                out,
                "{:>12} {:>6} {:>8} {:>12} {:>12} {:>8.2} {:>10} {:>4}/{}",
                m.label,
                r,
                m.buffer_capacity,
                m.offered_weight,
                m.delivered_weight,
                m.weighted_loss() * 100.0,
                m.server_dropped_slices + m.client_dropped_slices,
                m.server_occupancy_max,
                m.buffer_capacity
            );
        }
        let _ = writeln!(
            out,
            "aggregate:     weighted loss {:.2}%, link util {:.4}, peak slot {} / {link_rate}",
            report.weighted_loss() * 100.0,
            report.utilization(),
            report.max_slot_sent()
        );
    } else {
        // Comparison: every scheduler x {tail, greedy} vs dedicated links.
        if args.opt("trace-out").is_some() || args.opt("metrics-out").is_some() {
            return Err(CliError::usage(
                "--trace-out/--metrics-out need a single run: add --scheduler and/or --policy",
            ));
        }
        let policies = ["tail", "greedy"];
        let mut ded = Vec::new();
        for p in policies {
            ded.push((p, dedicated(p)?));
        }
        let _ = writeln!(
            out,
            "{:>22} {:>8} {:>15} {:>12} {:>10}",
            "scheduler", "policy", "dedicated_loss%", "shared_loss%", "link_util"
        );
        for sched_key in ["rr", "wfq", "greedy"] {
            for p in policies {
                let report = shared(parse_scheduler(sched_key)?, p, &mut NoopProbe)?;
                let ded_loss = ded.iter().find(|(q, _)| *q == p).map_or(0.0, |(_, l)| *l);
                let _ = writeln!(
                    out,
                    "{:>22} {:>8} {:>15.2} {:>12.2} {:>10.4}",
                    report.scheduler,
                    p,
                    ded_loss * 100.0,
                    report.weighted_loss() * 100.0,
                    report.utilization()
                );
            }
        }
    }
    Ok(out)
}

fn frontier(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "trace file")?;
    let stream = load(path)?;
    let delays: Vec<u64> = match args.opt("delays") {
        Some(spec) => spec
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<u64>()
                    .map_err(|_| CliError::usage(format!("bad delay {tok:?} in --delays")))
            })
            .collect::<Result<_, _>>()?,
        None => vec![0, 1, 2, 4, 8, 16, 32, 64],
    };
    let mut out = String::new();
    let avg = stream.stats().average_rate;
    let _ = writeln!(out, "lossless frontier of {path} (avg rate {avg:.1}):");
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>12} {:>10}",
        "delay", "min rate", "rate/avg", "B = R*D"
    );
    for d in delays {
        let r = min_lossless_rate(&stream, d);
        let _ = writeln!(
            out,
            "{d:>8} {r:>10} {:>12.3} {:>10}",
            if avg > 0.0 { r as f64 / avg } else { 0.0 },
            r * d
        );
    }
    Ok(out)
}

/// Parses a comma-separated `u64` list option (`--buffers 0,8,64`).
fn parse_u64_list(what: &str, spec: &str) -> Result<Vec<u64>, CliError> {
    spec.split(',')
        .map(|tok| {
            tok.trim()
                .parse::<u64>()
                .map_err(|_| CliError::usage(format!("bad value {tok:?} in --{what}")))
        })
        .collect()
}

fn optimal_cmd(args: &Args) -> Result<String, CliError> {
    let path = args.positional(0, "trace file")?;
    let stream = load(path)?;
    let sweep = rts_offline::OptimalSweep::new(&stream)
        .map_err(|e| CliError::usage(format!("{path}: {e} ('optimal' needs unit slices; regenerate with --slicing byte)")))?;
    let total = stream.total_weight();
    let offered = stream.slice_count() as u64;

    // One warm sweep answers every point: --buffers at a fixed --rate
    // (the default axis), or --rates at a fixed --buffer.
    let rate_axis = args.opt("rates");
    let (points, axis): (Vec<(u64, u64)>, &str) = match rate_axis {
        Some(spec) => {
            let buffer: u64 = args.require("buffer")?;
            let rates = parse_u64_list("rates", spec)?;
            if rates.contains(&0) {
                return Err(CliError::usage("--rates entries must be positive"));
            }
            (rates.into_iter().map(|r| (buffer, r)).collect(), "rate")
        }
        None => {
            let rate: u64 = args.require("rate")?;
            if rate == 0 {
                return Err(CliError::usage("--rate must be positive"));
            }
            let buffers = match args.opt("buffers") {
                Some(spec) => parse_u64_list("buffers", spec)?,
                None => vec![0, 1, 2, 4, 8, 16, 32, 64, 128, 256],
            };
            (buffers.into_iter().map(|b| (b, rate)).collect(), "buffer")
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "offline optimum of {path} ({offered} unit slices, total weight {total}):"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>6} {:>12} {:>9} {:>12} {:>9}",
        "buffer", "rate", "benefit", "benefit%", "throughput", "loss%"
    );
    for (b, r) in points {
        let benefit = sweep.benefit(b, r);
        let tp = sweep.throughput(b, r);
        let kept = if total > 0 {
            benefit as f64 / total as f64
        } else {
            1.0
        };
        let _ = writeln!(
            out,
            "{b:>8} {r:>6} {benefit:>12} {:>8.2}% {tp:>12} {:>8.2}%",
            100.0 * kept,
            100.0 * (1.0 - kept)
        );
    }
    let _ = writeln!(
        out,
        "(exact optima via the dense chain solver, warm-started across the {axis} sweep)"
    );
    Ok(out)
}

/// Parses a seed that may be decimal or `0x`-prefixed hex (the form the
/// failure reports print).
fn parse_seed(what: &str, v: &str) -> Result<u64, CliError> {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse::<u64>(),
    };
    parsed.map_err(|_| CliError::usage(format!("{what}: cannot parse seed {v:?}")))
}

fn check_cmd(args: &Args) -> Result<String, CliError> {
    if args.positional(0, "").map(|p| p == "list").unwrap_or(false) {
        return Ok(rts_check::list_checks());
    }
    let cases: u64 = args.opt_or("cases", 100)?;
    let seed: u64 = args.opt_or("seed", 1)?;
    let filter = args.opt("filter");
    // Replay mode: --case-seed wins, else the CHECK_SEED environment
    // variable (the exact form a failure report prints).
    let case_seed = match args.opt("case-seed") {
        Some(v) => Some(parse_seed("--case-seed", v)?),
        None => match std::env::var("CHECK_SEED") {
            Ok(v) => Some(parse_seed("CHECK_SEED", &v)?),
            Err(_) => None,
        },
    };
    if case_seed.is_some() && filter.is_none() {
        return Err(CliError::usage(
            "replaying a CHECK_SEED needs --filter NAME (the failing check)",
        ));
    }
    let mut cfg = rts_check::CheckConfig::new(cases, seed);
    if let Some(s) = case_seed {
        cfg = cfg.with_case_seed(s);
    }
    let report = rts_check::run_checks(&cfg, filter);
    if report.ok() {
        Ok(report.text)
    } else {
        Err(CliError::Check {
            failed: report.failed.len(),
            report: report.text,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("smoothctl_test_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn run_line(line: &[&str]) -> Result<String, CliError> {
        run(&Args::parse(line.iter().copied()).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run_line(&["help"]).unwrap();
        assert!(out.contains("smoothctl"));
        assert!(out.contains("frontier"));
    }

    #[test]
    fn unknown_subcommand() {
        let e = run_line(&["bogus"]).unwrap_err();
        assert!(e.to_string().contains("unknown subcommand 'bogus'"));
    }

    #[test]
    fn generate_stats_plan_simulate_frontier_roundtrip() {
        let file = tmp("roundtrip");
        let out = run_line(&[
            "generate",
            "--out",
            &file,
            "--kind",
            "mpeg",
            "--frames",
            "120",
            "--seed",
            "9",
            "--slicing",
            "frame",
        ])
        .unwrap();
        assert!(out.contains("120 frames"));

        let out = run_line(&["stats", &file]).unwrap();
        assert!(out.contains("avg rate"));
        assert!(out.contains("I frames"));

        let out = run_line(&["plan", &file, "--delay", "8"]).unwrap();
        assert!(out.contains("lossless plan"));
        assert!(out.contains("balanced"));

        let out = run_line(&[
            "simulate", &file, "--buffer", "400", "--rate", "40", "--delay", "10", "--policy",
            "greedy",
        ])
        .unwrap();
        assert!(out.contains("policy:        Greedy"));
        assert!(out.contains("weighted loss"));

        let out = run_line(&["frontier", &file, "--delays", "0,4,16"]).unwrap();
        assert_eq!(out.lines().count(), 2 + 3);

        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn optimal_sweeps_buffers_and_rates() {
        let file = tmp("optimal");
        run_line(&[
            "generate", "--out", &file, "--frames", "60", "--seed", "3", "--slicing", "byte",
        ])
        .unwrap();
        let out = run_line(&["optimal", &file, "--rate", "40", "--buffers", "0,8,64"]).unwrap();
        assert_eq!(out.lines().count(), 2 + 3 + 1, "{out}");
        assert!(out.contains("warm-started"));
        // A generous rate sweep ends lossless: the last row reads 0.00%.
        let out = run_line(&["optimal", &file, "--buffer", "4096", "--rates", "1,200"]).unwrap();
        assert_eq!(out.lines().count(), 2 + 2 + 1, "{out}");
        let last_row = out.lines().nth(3).unwrap();
        assert!(last_row.trim_end().ends_with("0.00%"), "{last_row}");
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn optimal_rejects_bad_inputs() {
        let file = tmp("optimal_bad");
        run_line(&[
            "generate", "--out", &file, "--frames", "30", "--slicing", "frame",
        ])
        .unwrap();
        // Whole-frame slices are not unit slices.
        let e = run_line(&["optimal", &file, "--rate", "40"]).unwrap_err();
        assert!(e.to_string().contains("unit slices"), "{e}");
        let _ = std::fs::remove_file(&file);

        let file = tmp("optimal_bad2");
        run_line(&[
            "generate", "--out", &file, "--frames", "30", "--slicing", "byte",
        ])
        .unwrap();
        assert!(run_line(&["optimal", &file]).is_err()); // no axis at all
        assert!(run_line(&["optimal", &file, "--rate", "0"]).is_err());
        assert!(run_line(&["optimal", &file, "--rates", "10,0", "--buffer", "8"]).is_err());
        assert!(run_line(&["optimal", &file, "--rates", "10"]).is_err()); // missing --buffer
        assert!(run_line(&["optimal", &file, "--rate", "9", "--buffers", "1,x"]).is_err());
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn generate_markov_and_cbr() {
        let file = tmp("kinds");
        for kind in ["markov", "cbr"] {
            let out = run_line(&[
                "generate",
                "--out",
                &file,
                "--kind",
                kind,
                "--frames",
                "50",
                "--slicing",
                "chunk:8",
                "--weights",
                "size",
            ])
            .unwrap();
            assert!(out.contains("50 frames"), "{kind}: {out}");
        }
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn generate_rejects_bad_inputs() {
        assert!(run_line(&["generate"]).is_err()); // missing --out
        assert!(run_line(&["generate", "--out", "x", "--kind", "avi"]).is_err());
        assert!(run_line(&["generate", "--out", "x", "--slicing", "chunk:0"]).is_err());
        assert!(run_line(&["generate", "--out", "x", "--weights", "gold"]).is_err());
    }

    #[test]
    fn plan_needs_exactly_one_of_rate_delay() {
        let file = tmp("plan");
        run_line(&["generate", "--out", &file, "--frames", "30"]).unwrap();
        assert!(run_line(&["plan", &file]).is_err());
        assert!(run_line(&["plan", &file, "--delay", "2", "--rate", "9"]).is_err());
        let by_rate = run_line(&["plan", &file, "--rate", "200"]).unwrap();
        assert!(by_rate.contains("link rate R:       200"));
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn simulate_rejects_bad_policy_and_zero_rate() {
        let file = tmp("sim");
        run_line(&["generate", "--out", &file, "--frames", "20"]).unwrap();
        let e = run_line(&[
            "simulate", &file, "--buffer", "5", "--rate", "0", "--delay", "1",
        ])
        .unwrap_err();
        assert!(e.to_string().contains("--rate must be positive"));
        let e = run_line(&[
            "simulate", &file, "--buffer", "5", "--rate", "2", "--delay", "1", "--policy", "yolo",
        ])
        .unwrap_err();
        assert!(e.to_string().contains("unknown policy"));
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn merge_combines_traces() {
        let a = tmp("merge_a");
        let b = tmp("merge_b");
        let out = tmp("merge_out");
        run_line(&["generate", "--out", &a, "--frames", "20", "--seed", "1"]).unwrap();
        run_line(&["generate", "--out", &b, "--frames", "30", "--seed", "2"]).unwrap();
        let msg = run_line(&["merge", &a, &b, "--out", &out]).unwrap();
        assert!(msg.contains("merged 2 traces"));
        assert!(msg.contains("30 frames"));
        let stats = run_line(&["stats", &out]).unwrap();
        assert!(stats.contains("slices:        50"));
        assert!(run_line(&["merge", &a, "--out", &out]).is_err()); // one input
        for f in [&a, &b, &out] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn convert_ingests_raw_sizes() {
        let sizes = tmp("sizes");
        let out = tmp("converted");
        std::fs::write(&sizes, "I 120\n38\nB 12\n").unwrap();
        let msg = run_line(&["convert", &sizes, "--out", &out, "--slicing", "byte"]).unwrap();
        assert!(msg.contains("3 frames"));
        assert!(msg.contains("170 bytes"));
        let stats = run_line(&["stats", &out]).unwrap();
        assert!(stats.contains("bytes:         170"));
        assert!(run_line(&["convert", &sizes]).is_err()); // missing --out
        let _ = std::fs::remove_file(&sizes);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn simulate_timeline_export() {
        let file = tmp("timeline_trace");
        let timeline = tmp("timeline_csv");
        run_line(&["generate", "--out", &file, "--frames", "30"]).unwrap();
        let out = run_line(&[
            "simulate",
            &file,
            "--buffer",
            "100",
            "--rate",
            "40",
            "--delay",
            "3",
            "--timeline",
            &timeline,
        ])
        .unwrap();
        assert!(out.contains("timeline:"));
        let csv = std::fs::read_to_string(&timeline).unwrap();
        assert!(csv.starts_with("time,server_occupancy"));
        assert!(csv.lines().count() > 30);
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_file(&timeline);
    }

    #[test]
    fn mux_demo_compares_schedulers_and_policies() {
        let out = run_line(&["mux", "--sessions", "2", "--frames", "60"]).unwrap();
        assert!(out.contains("mux: 2 sessions"), "{out}");
        for name in ["Round-Robin", "Weighted-Fair", "Greedy-Across-Sessions"] {
            assert_eq!(out.matches(name).count(), 2, "{name} x 2 policies: {out}");
        }
        // header + 3 schedulers x 2 policies + banner
        assert_eq!(out.lines().count(), 2 + 6);
    }

    #[test]
    fn mux_single_run_reports_per_session() {
        let out = run_line(&[
            "mux", "--sessions", "3", "--frames", "60", "--scheduler", "wfq", "--policy", "tail",
        ])
        .unwrap();
        assert!(out.contains("scheduler:     Weighted-Fair"), "{out}");
        assert_eq!(out.matches("mpeg-").count(), 3, "{out}");
        assert!(out.contains("aggregate:"), "{out}");
    }

    #[test]
    fn mux_accepts_trace_files() {
        let file = tmp("mux_trace");
        run_line(&["generate", "--out", &file, "--frames", "40", "--slicing", "byte"]).unwrap();
        let out = run_line(&[
            "mux", &file, &file, "--scheduler", "rr", "--factor", "1.1", "--delay", "4",
        ])
        .unwrap();
        assert!(out.contains("mux: 2 sessions"), "{out}");
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn mux_rejects_bad_inputs() {
        assert!(run_line(&["mux", "--sessions", "0"]).is_err());
        assert!(run_line(&["mux", "--scheduler", "fifo", "--frames", "10"]).is_err());
        assert!(run_line(&["mux", "--overbook", "3", "--frames", "10"]).is_err());
        assert!(run_line(&["mux", "--overbook", "1/0", "--frames", "10"]).is_err());
        // A link far below the nominal sum trips admission control.
        let e = run_line(&["mux", "--frames", "40", "--link-rate", "1"]).unwrap_err();
        assert!(e.to_string().contains("rejected"), "{e}");
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = run_line(&["stats", "/nonexistent/definitely/missing.txt"]).unwrap_err();
        assert!(matches!(e, CliError::Io { .. }));
    }

    #[test]
    fn simulate_trace_out_roundtrips_through_obs() {
        let file = tmp("obs_trace");
        let events = tmp("obs_events");
        let series = tmp("obs_series");
        run_line(&["generate", "--out", &file, "--frames", "40"]).unwrap();
        let out = run_line(&[
            "simulate",
            &file,
            "--buffer",
            "200",
            "--rate",
            "40",
            "--delay",
            "5",
            "--trace-out",
            &events,
            "--metrics-out",
            &series,
        ])
        .unwrap();
        assert!(out.contains("trace:         wrote"), "{out}");
        assert!(out.contains("metrics:       wrote"), "{out}");

        let csv = std::fs::read_to_string(&series).unwrap();
        assert!(csv.starts_with(rts_obs::CSV_HEADER), "{csv}");

        let summary = run_line(&["obs", &events]).unwrap();
        assert!(summary.contains("replayed"), "{summary}");
        assert!(summary.contains("sojourn"), "{summary}");
        for f in [&file, &events, &series] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn mux_single_run_writes_trace() {
        let events = tmp("mux_events");
        let out = run_line(&[
            "mux", "--sessions", "2", "--frames", "40", "--scheduler", "rr", "--trace-out",
            &events,
        ])
        .unwrap();
        assert!(out.contains("trace:         wrote"), "{out}");
        let summary = run_line(&["obs", &events]).unwrap();
        assert!(summary.contains("sessions=2"), "{summary}");
        let _ = std::fs::remove_file(&events);
    }

    #[test]
    fn mux_comparison_mode_rejects_trace_out() {
        let e = run_line(&["mux", "--frames", "10", "--trace-out", "x.jsonl"]).unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e}");
    }

    #[test]
    fn obs_rejects_missing_and_malformed_traces() {
        let e = run_line(&["obs", "/no/such/trace.jsonl"]).unwrap_err();
        assert!(matches!(e, CliError::Io { .. }));
        assert!(e.to_string().contains("/no/such/trace.jsonl"));

        let bad = tmp("obs_bad");
        std::fs::write(&bad, "{\"ev\":\"run_start\",\"t\":0,\"sessions\":1}\nnot json\n").unwrap();
        let e = run_line(&["obs", &bad]).unwrap_err();
        assert!(matches!(e, CliError::Events { .. }), "{e}");
        assert!(e.to_string().contains("line 2"), "{e}");
        let _ = std::fs::remove_file(&bad);
    }
}
