//! `smoothctl serve`: run the sharded smoothing daemon.
//!
//! Three workload sources compose freely:
//!
//! * `--sessions K` — K loopback CBR sessions admitted at startup
//!   (the capacity-smoke configuration: no sockets involved);
//! * `--replay TRACE.jsonl` — sessions reconstructed from a recorded
//!   `--trace-out` event trace, admitted as scheduled arrivals;
//! * `--listen tcp:HOST:PORT` / `--listen uds:PATH` — a frame-protocol
//!   ingest socket, served for `--run-secs` seconds.
//!
//! The run ends when every session has retired (finite sources) or
//! when `--run-secs` elapses; whatever is still live is then drained
//! (evicted with `--evict-on-exit true`). The exit ledger is printed
//! and, with `--trace-out`, lifecycle events (`session_joined`,
//! `session_retired`, `ingest_rejected`) land in JSONL for
//! `smoothctl obs`.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rts_obs::{JsonlWriter, Probe};
use rts_smoothd::{
    replay_sessions, serve_tcp_with, AdmitRequest, ArrivalSource, Daemon, DaemonConfig,
    DaemonReport, IngestConfig, IngestServer, QueuedSlice, RebalanceConfig, SlotPacing, WirePolicy,
};
use rts_telemetry::{render_exposition, MetricsServer};

use crate::{Args, CliError};

/// Where `--listen` points.
enum Listen {
    Tcp(String),
    #[cfg_attr(not(unix), allow(dead_code))]
    Uds(String),
}

fn parse_listen(spec: &str) -> Result<Listen, CliError> {
    if let Some(addr) = spec.strip_prefix("tcp:") {
        return Ok(Listen::Tcp(addr.to_string()));
    }
    if let Some(path) = spec.strip_prefix("uds:") {
        return Ok(Listen::Uds(path.to_string()));
    }
    Err(CliError::usage(format!(
        "option --listen: expected tcp:HOST:PORT or uds:PATH, got {spec:?}"
    )))
}

fn parse_overbook(spec: &str) -> Result<(u64, u64), CliError> {
    let bad = || CliError::usage(format!("option --overbook: expected NUM/DEN, got {spec:?}"));
    let (num, den) = spec.split_once('/').ok_or_else(bad)?;
    let num: u64 = num.parse().map_err(|_| bad())?;
    let den: u64 = den.parse().map_err(|_| bad())?;
    if num == 0 || den == 0 || num < den {
        return Err(CliError::usage(format!(
            "option --overbook: NUM/DEN must be >= 1 with both nonzero, got {spec:?}"
        )));
    }
    Ok((num, den))
}

fn parse_policy(spec: &str) -> Result<WirePolicy, CliError> {
    match spec {
        "tail" => Ok(WirePolicy::Tail),
        "head" => Ok(WirePolicy::Head),
        "greedy" => Ok(WirePolicy::Greedy),
        other => Err(CliError::usage(format!(
            "option --policy: expected tail|head|greedy, got {other:?}"
        ))),
    }
}

fn start_listener(
    daemon: Arc<Mutex<Daemon>>,
    listen: &Listen,
    ingest: IngestConfig,
) -> Result<(IngestServer, String), CliError> {
    match listen {
        Listen::Tcp(addr) => {
            let server = serve_tcp_with(daemon, addr, ingest).map_err(|e| CliError::io(addr, e))?;
            let bound = server
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|| addr.clone());
            Ok((server, format!("tcp:{bound}")))
        }
        #[cfg(unix)]
        Listen::Uds(path) => {
            let server = rts_smoothd::serve_uds_with(daemon, std::path::Path::new(path), ingest)
                .map_err(|e| CliError::io(path, e))?;
            Ok((server, format!("uds:{path}")))
        }
        #[cfg(not(unix))]
        Listen::Uds(path) => Err(CliError::io(
            path,
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ),
        )),
    }
}

/// Executes `smoothctl serve`.
pub(crate) fn serve_cmd(args: &Args) -> Result<String, CliError> {
    let sessions: u64 = args.opt_or("sessions", 0)?;
    let rate: u64 = args.opt_or("rate", 8)?;
    let delay: u64 = args.opt_or("delay", 4)?;
    let link_delay: u64 = args.opt_or("link-delay", 1)?;
    let slice_size: u64 = args.opt_or("slice-size", rate.max(1))?;
    let per_slot: u64 = args.opt_or("per-slot", rate)?;
    let lifetime: u64 = args.opt_or("lifetime", 256)?;
    let shards: u32 = args.opt_or("shards", 0)?;
    let queue: usize = args.opt_or("queue", 1024)?;
    let ingest_threads: usize =
        args.opt_or("ingest-threads", rts_smoothd::DEFAULT_INGEST_THREADS)?;
    let slot_us: u64 = args.opt_or("slot-us", 0)?;
    let run_secs: f64 = args.opt_or("run-secs", 0.0)?;
    let policy = parse_policy(args.opt("policy").unwrap_or("tail"))?;
    let overbook = match args.opt("overbook") {
        Some(s) => parse_overbook(s)?,
        None => (1, 1),
    };
    let listen = args.opt("listen").map(parse_listen).transpose()?;
    if rate == 0 {
        return Err(CliError::usage("option --rate: must be positive"));
    }
    if sessions == 0
        && listen.is_none()
        && args.opt("replay").is_none()
        && args.opt("restore").is_none()
    {
        return Err(CliError::usage(
            "nothing to serve: give --sessions, --replay, --restore, and/or --listen",
        ));
    }

    let mut cfg = DaemonConfig {
        queue_capacity: queue.max(1),
        // --slot-us selects absolute-deadline pacing: the realized
        // slot period holds at the configured value (work permitting)
        // with misses accounted, instead of drifting by work time.
        pacing: if slot_us > 0 {
            SlotPacing::Deadline(Duration::from_micros(slot_us))
        } else {
            SlotPacing::Free
        },
        record_events: args.opt("trace-out").is_some(),
        overbook,
        // --rebalance true turns on skew-aware migration with the
        // default hysteresis constants.
        rebalance: RebalanceConfig {
            enabled: args.opt("rebalance") == Some("true"),
            ..RebalanceConfig::default()
        },
        ..DaemonConfig::default()
    };
    if shards > 0 {
        cfg.shards = shards;
    }
    // Default the per-shard link to exactly what the loopback workload
    // books, so --sessions alone always fits regardless of core count.
    cfg.shard_link_rate = match args.opt_parse::<u64>("shard-link-rate")? {
        Some(r) => r,
        None => {
            let per_shard = sessions.div_ceil(u64::from(cfg.shards.max(1)));
            (rate * per_shard.max(1)).max(1 << 16)
        }
    };

    let started = Instant::now();
    let mut daemon = Daemon::start(cfg.clone());
    let mut out = String::new();

    // --restore loads a snapshot image into the fresh daemon before
    // any new workload is admitted. All-or-nothing: a torn or corrupt
    // file (or one that does not fit this daemon's capacity) refuses
    // the whole start, so a rolling restart never half-loads.
    let mut restored: u64 = 0;
    if let Some(path) = args.opt("restore") {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                daemon.shutdown(false);
                return Err(CliError::io(path, e));
            }
        };
        match daemon.restore(&bytes) {
            Ok(n) => {
                restored = n;
                let _ = writeln!(out, "restored:      {n} session(s) from {path}");
            }
            Err(e) => {
                daemon.shutdown(false);
                return Err(CliError::io(
                    path,
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()),
                ));
            }
        }
    }

    // The exposition listener reads the registry directly, so it works
    // in every mode — loopback, replay, and socket ingest alike — and
    // keeps serving fresh snapshots without the daemon mutex.
    let metrics = match args.opt("metrics-addr") {
        Some(addr) => {
            let registry = daemon.registry();
            let render = Arc::new(move || render_exposition(&registry.snapshot()));
            match MetricsServer::serve(addr, render) {
                Ok(server) => {
                    let _ = writeln!(out, "metrics:       tcp:{}", server.local_addr());
                    Some(server)
                }
                Err(e) => {
                    daemon.shutdown(false);
                    return Err(CliError::io(addr, e));
                }
            }
        }
        None => None,
    };

    let req = AdmitRequest {
        rate,
        delay,
        link_delay,
        buffer: 0, // balanced B = R·D
        weight: 1,
        policy,
        per_slot: u32::try_from(per_slot)
            .map_err(|_| CliError::usage("option --per-slot: too large"))?,
        slice_size: u32::try_from(slice_size)
            .map_err(|_| CliError::usage("option --slice-size: too large"))?,
        lifetime,
    };

    // --skew true pins every loopback admission onto shard 0 instead
    // of cost-routing, building the deliberately unbalanced population
    // the rebalancer exists to fix (CI's migration smoke uses this).
    let skew = args.opt("skew") == Some("true");
    let mut admitted: u64 = 0;
    let mut rejected: u64 = 0;
    for _ in 0..sessions {
        let outcome = if skew {
            daemon.admit_pinned(&req, 0).map(|id| (id, 0))
        } else {
            daemon.admit(&req)
        };
        match outcome {
            Ok(_) => admitted += 1,
            Err(_) => rejected += 1,
        }
    }

    // Restored sessions keep whatever sources they were checkpointed
    // with (often unbounded); never block the exit on their
    // retirement — shutdown's drain settles them either way.
    let mut unbounded = (sessions > 0 && lifetime == 0) || restored > 0;
    if let Some(path) = args.opt("replay") {
        let file = std::fs::File::open(path).map_err(|e| CliError::io(path, e))?;
        let replayed = replay_sessions(std::io::BufReader::new(file))
            .map_err(|e| CliError::events(path, e))?;
        if replayed.is_empty() {
            // Lifecycle-only traces (serve's own --trace-out) carry no
            // slice_admitted events; silently serving nothing would
            // read as success.
            return Err(CliError::events(
                path,
                rts_obs::ReplayError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "trace has no slice_admitted events to replay \
                     (record one with `smoothctl simulate --trace-out` or `mux --trace-out`)",
                )),
            ));
        }
        for session in replayed {
            let slices: Vec<QueuedSlice> = session.slices;
            match daemon.admit_with_source(&req, ArrivalSource::scheduled(slices)) {
                Ok(_) => admitted += 1,
                Err(_) => rejected += 1,
            }
        }
    }

    let listener = match &listen {
        Some(spec) => {
            // The daemon moves behind a mutex for the ingest threads;
            // admissions over the socket may be unbounded CBR.
            unbounded = true;
            let shared = Arc::new(Mutex::new(daemon));
            let ingest = IngestConfig {
                threads: ingest_threads.max(1),
            };
            let (server, bound) = match start_listener(Arc::clone(&shared), spec, ingest) {
                Ok(ok) => ok,
                Err(e) => {
                    // Tear the workers down before surfacing the error.
                    let d = Arc::try_unwrap(shared)
                        .map(|m| m.into_inner().expect("daemon mutex"))
                        .unwrap_or_else(|_| unreachable!("listener never started"));
                    d.shutdown(false);
                    return Err(e);
                }
            };
            let _ = writeln!(
                out,
                "listening:     {bound} ({} ingest thread(s))",
                server.pool_threads()
            );
            let deadline = Instant::now() + Duration::from_secs_f64(run_secs.max(0.05));
            while Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(20));
                shared.lock().expect("daemon mutex").poll();
            }
            server.stop();
            daemon = Arc::try_unwrap(shared)
                .map(|m| m.into_inner().expect("daemon mutex"))
                .unwrap_or_else(|_| panic!("ingest threads still hold the daemon"));
            true
        }
        None => false,
    };

    if !listener && run_secs > 0.0 {
        // Poll on the same cadence as the socket loop so the
        // rebalancer (and event harvest) runs during the window, not
        // just once at the end.
        let deadline = Instant::now() + Duration::from_secs_f64(run_secs);
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
            daemon.poll();
        }
    }

    // Finite workloads: wait for full retirement so the exit ledger
    // conserves exactly. Unbounded ones get drained at shutdown.
    let drained = if unbounded {
        false
    } else {
        let budget = Duration::from_secs_f64((run_secs + 60.0).min(600.0));
        daemon.wait_idle(budget)
    };
    let evict = args.opt("evict-on-exit") == Some("true");
    let stats = daemon.stats();
    let migrations = daemon.registry().snapshot().migrations;
    let mut events = Vec::new();
    daemon.poll();
    daemon.take_events(&mut events);
    let report = daemon.shutdown(!evict);
    if let Some(mut server) = metrics {
        server.stop();
    }

    render(
        &mut out,
        &cfg,
        &report,
        admitted,
        rejected,
        stats.sessions,
        drained,
        started.elapsed(),
    );
    if migrations > 0 {
        let _ = writeln!(out, "rebalance:     {migrations} migration(s)");
    }

    if let Some(path) = args.opt("trace-out") {
        let resolved = rts_obs::resolve_out_path(std::path::Path::new(path))
            .display()
            .to_string();
        let sink = rts_obs::create_sink(std::path::Path::new(path))
            .map_err(|e| CliError::io(&resolved, e))?;
        let mut writer = JsonlWriter::new(sink);
        for ev in &events {
            writer.on_event(ev);
        }
        let lines = writer.lines();
        writer
            .finish()
            .and_then(|mut w| std::io::Write::flush(&mut w))
            .map_err(|e| CliError::io(&resolved, e))?;
        let _ = writeln!(out, "trace:         wrote {resolved} ({lines} events)");
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn render(
    out: &mut String,
    cfg: &DaemonConfig,
    report: &DaemonReport,
    admitted: u64,
    rejected: u64,
    live_at_stop: u64,
    drained: bool,
    elapsed: Duration,
) {
    let t = &report.totals;
    let _ = writeln!(
        out,
        "daemon:        {} shard(s), link {} B/slot each, overbook {}/{}",
        report.shards.len(),
        cfg.shard_link_rate,
        cfg.overbook.0,
        cfg.overbook.1
    );
    let _ = writeln!(
        out,
        "sessions:      admitted {admitted}, rejected {rejected}, retired {}, live at stop {}",
        report.retired_sessions, live_at_stop
    );
    let _ = writeln!(
        out,
        "slots:         {} total across shards ({})",
        report.total_slots(),
        if drained { "drained" } else { "stopped" }
    );
    let _ = writeln!(
        out,
        "ledger:        offered {} B = played {} + server-drop {} + client-drop {} + evicted {}",
        t.offered_bytes,
        t.played_bytes,
        t.server_dropped_bytes,
        t.client_dropped_bytes,
        t.evicted_bytes
    );
    let secs = elapsed.as_secs_f64().max(1e-9);
    let _ = writeln!(
        out,
        "throughput:    {:.0} slices/s played, {:.0} slot-steps/s, wall {:.2}s",
        t.played_slices as f64 / secs,
        report.total_slots() as f64 / secs,
        secs
    );
    if report.latency.count() > 0 {
        let _ = writeln!(
            out,
            "slot latency:  p50 {} ns, p99 {} ns, max {} ns",
            report.latency.quantile(0.50),
            report.latency.quantile(0.99),
            report.latency.max()
        );
    }
    if let SlotPacing::Deadline(period) = cfg.pacing {
        let misses: u64 = report.shards.iter().map(|s| s.deadline_misses).sum();
        let overruns: u64 = report.shards.iter().map(|s| s.slot_overruns).sum();
        let _ = writeln!(
            out,
            "pacing:        deadline {} us/slot, {misses} deadline miss(es), {overruns} overrun(s)",
            period.as_micros()
        );
    }
    if report.rejects.iter().any(|&n| n > 0) {
        let breakdown = report
            .rejects_by_reason()
            .map(|(reason, n)| format!("{}={n}", reason.name()))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "rejects:       {breakdown}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Args {
        Args::parse(argv.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn loopback_sessions_drain_and_conserve() {
        let args = parse(&[
            "serve", "--sessions", "12", "--rate", "4", "--delay", "3", "--lifetime", "20",
            "--shards", "2",
        ]);
        let out = serve_cmd(&args).unwrap();
        assert!(out.contains("admitted 12, rejected 0, retired 12"), "{out}");
        assert!(out.contains("(drained)"), "{out}");
        // Exact conservation: everything offered was played.
        let ledger = out.lines().find(|l| l.starts_with("ledger:")).unwrap();
        assert!(
            ledger.contains("played 960 + server-drop 0 + client-drop 0 + evicted 0"),
            "{ledger}"
        );
    }

    #[test]
    fn paced_loopback_prints_pacing_line_and_serves_metrics() {
        let args = parse(&[
            "serve",
            "--sessions",
            "4",
            "--rate",
            "4",
            "--delay",
            "3",
            "--lifetime",
            "10",
            "--shards",
            "1",
            "--slot-us",
            "500",
            "--metrics-addr",
            "127.0.0.1:0",
        ]);
        let out = serve_cmd(&args).unwrap();
        assert!(out.contains("admitted 4, rejected 0, retired 4"), "{out}");
        assert!(out.contains("pacing:        deadline 500 us/slot"), "{out}");
        assert!(out.contains("metrics:       tcp:127.0.0.1:"), "{out}");
    }

    #[test]
    fn metrics_endpoint_serves_parseable_exposition() {
        use rts_telemetry::{parse_exposition, series_value};
        use std::io::{Read as _, Write as _};

        // Drive the daemon pieces directly so the scrape happens while
        // the metrics listener is up and counters are final.
        let cfg = DaemonConfig {
            shards: 1,
            shard_link_rate: 64,
            overbook: (1, 1),
            queue_capacity: 64,
            pacing: SlotPacing::Deadline(Duration::from_micros(200)),
            record_events: false,
            rebalance: Default::default(),
        };
        let mut daemon = Daemon::start(cfg);
        let registry = daemon.registry();
        let render = Arc::new(move || render_exposition(&registry.snapshot()));
        let mut server = MetricsServer::serve("127.0.0.1:0", render).unwrap();
        let req = AdmitRequest {
            rate: 4,
            delay: 3,
            link_delay: 1,
            buffer: 0,
            weight: 1,
            policy: WirePolicy::Tail,
            per_slot: 4,
            slice_size: 1,
            lifetime: 10,
        };
        for _ in 0..3 {
            daemon.admit(&req).unwrap();
        }
        assert!(daemon.wait_idle(Duration::from_secs(20)));
        daemon.poll();

        let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut text = String::new();
        conn.read_to_string(&mut text).unwrap();
        let body = text.split("\r\n\r\n").nth(1).expect("http body");
        let parsed = parse_exposition(body).expect("exposition parses");
        assert_eq!(
            series_value(&parsed, "smoothd_retired_total"),
            Some(3.0),
            "{body}"
        );
        let slots = series_value(&parsed, "smoothd_slots_total{shard=\"0\"}").unwrap();
        assert!(slots >= 10.0, "paced shard stepped its slots: {slots}");

        server.stop();
        daemon.shutdown(true);
    }

    #[test]
    fn skewed_loopback_run_migrates_and_reports_it() {
        // All 32 sessions pinned onto shard 0 of 2; the rebalancer must
        // move some across during the run and the summary must say so.
        let args = parse(&[
            "serve", "--sessions", "32", "--rate", "4", "--delay", "3", "--lifetime", "0",
            "--shards", "2", "--skew", "true", "--rebalance", "true", "--run-secs", "1.5",
            "--evict-on-exit", "true",
        ]);
        let out = serve_cmd(&args).unwrap();
        assert!(out.contains("admitted 32, rejected 0"), "{out}");
        let line = out
            .lines()
            .find(|l| l.starts_with("rebalance:"))
            .unwrap_or_else(|| panic!("no rebalance line in:\n{out}"));
        let n: u64 = line
            .split_whitespace()
            .nth(1)
            .and_then(|w| w.parse().ok())
            .unwrap_or(0);
        assert!(n >= 1, "{line}");
    }

    #[test]
    fn nothing_to_serve_is_a_usage_error() {
        let e = serve_cmd(&parse(&["serve"])).unwrap_err();
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn malformed_listen_and_overbook_are_usage_errors() {
        let e = serve_cmd(&parse(&["serve", "--sessions", "1", "--listen", "443"])).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        let e =
            serve_cmd(&parse(&["serve", "--sessions", "1", "--overbook", "half"])).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        let e = serve_cmd(&parse(&["serve", "--sessions", "1", "--policy", "lifo"])).unwrap_err();
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn unbindable_listen_address_is_an_io_error() {
        let e = serve_cmd(&parse(&[
            "serve",
            "--sessions",
            "1",
            "--listen",
            "tcp:256.0.0.1:0",
        ]))
        .unwrap_err();
        assert_eq!(e.exit_code(), 1);
    }

    #[test]
    fn missing_replay_trace_is_an_io_error() {
        let e = serve_cmd(&parse(&["serve", "--replay", "/nonexistent/trace.jsonl"])).unwrap_err();
        assert_eq!(e.exit_code(), 1);
    }

    #[test]
    fn sliceless_replay_trace_is_a_loud_error() {
        // A lifecycle-only trace (what serve's own --trace-out writes)
        // reconstructs zero sessions; serving nothing must not look
        // like success.
        let dir = std::env::temp_dir().join(format!("serve-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lifecycle.jsonl");
        std::fs::write(
            &path,
            "{\"ev\":\"session_joined\",\"t\":0,\"session\":1,\"shard\":0,\"rate\":4}\n",
        )
        .unwrap();
        let e = serve_cmd(&parse(&["serve", "--replay", path.to_str().unwrap()])).unwrap_err();
        assert_eq!(e.exit_code(), 1);
        assert!(e.to_string().contains("no slice_admitted events"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
