//! `smoothctl`: a command-line front end for the smoothing library.
//!
//! Subcommands (see `smoothctl help`):
//!
//! * `generate` — synthesize a trace (MPEG-like, Markov on/off, CBR)
//!   into the text trace format;
//! * `stats` — inspect a trace: sizes, rates, burst structure;
//! * `plan` — capacity planning around `B = R·D` (Theorem 3.5) plus the
//!   lossless requirement;
//! * `simulate` — run the generic algorithm with a chosen drop policy
//!   and print the schedule metrics;
//! * `mux` — run several sessions over one shared link (rts-mux) and
//!   compare schedulers and drop policies against dedicated links;
//! * `obs` — replay a `--trace-out` JSONL event trace through the
//!   streaming collector and print its summary;
//! * `frontier` — the lossless rate–delay frontier of a trace;
//! * `optimal` — exact offline optima across a buffer or rate sweep,
//!   warm-started so the whole sweep costs one stream analysis;
//! * `check` — run the rts-check property catalog (theorem-bound
//!   invariants and differential oracles) with seed replay;
//! * `serve` — run the sharded `smoothd` daemon: loopback CBR
//!   sessions, trace replay, and/or a frame-protocol ingest socket
//!   (the `smoothd` binary is a shortcut for this subcommand);
//! * `top` — live terminal dashboard for a running daemon: polls
//!   detailed stats frames over the ingest socket and renders
//!   per-shard throughput, slot latency, and deadline-miss rates;
//! * `snapshot` — checkpoint a running daemon's resident sessions to
//!   a CRC-guarded snapshot file over the ingest socket; `serve
//!   --restore FILE` loads it into a fresh daemon for rolling
//!   restarts.
//!
//! Every command is a pure function from parsed arguments to an output
//! string (errors are typed), so the whole surface is unit-tested; the
//! binary only does I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod error;
mod serve;
mod snapshot;
mod top;

pub use args::Args;
pub use commands::run;
pub use error::CliError;

/// Usage text printed by `smoothctl help` and on usage errors.
pub const USAGE: &str = "\
smoothctl — optimal smoothing schedules for real-time streams

USAGE:
  smoothctl generate --out FILE [--kind mpeg|markov|cbr] [--frames N]
            [--seed S] [--slicing byte|frame|chunk:N]
            [--weights mpeg|uniform|size]
  smoothctl convert SIZES_FILE --out FILE [--slicing ...] [--weights ...]
            (SIZES_FILE: one frame per line, '<size>' or '<kind> <size>')
  smoothctl merge FILE FILE... --out FILE
  smoothctl stats FILE
  smoothctl plan FILE (--delay D | --rate R) [--link-delay P]
  smoothctl simulate FILE --buffer B --rate R --delay D
            [--policy greedy|tail|head|random] [--link-delay P]
            [--client-buffer BC] [--timeline CSV]
            [--faults SPEC] [--resync SKEW/CATCHUP]
            [--trace-out JSONL] [--metrics-out CSV]
  smoothctl mux [FILE...] [--sessions K] [--frames N] [--seed S]
            [--factor F] [--delay D] [--link-delay P] [--link-rate C]
            [--overbook NUM/DEN] [--scheduler rr|wfq|greedy]
            [--policy greedy|tail|head|random]
            [--faults SPEC] [--resync SKEW/CATCHUP]
            [--trace-out JSONL] [--metrics-out CSV]
            (no FILEs: generates K MPEG-like demo sessions; without
            --scheduler/--policy: compares all schedulers x policies
            against dedicated links)
  smoothctl obs TRACE.jsonl
            (replay a --trace-out event trace and print the streaming
            summary: counts, drops by site/reason, quantiles)
  smoothctl frontier FILE [--delays 0,1,2,4,8,...]
  smoothctl optimal FILE (--rate R [--buffers B1,B2,...]
            | --buffer B --rates R1,R2,...)
            (exact offline optimum — benefit, throughput, weighted
            loss — across a buffer or rate sweep; the whole sweep is
            warm-started from one analysis of the trace. Needs unit
            slices, i.e. traces generated with --slicing byte)
  smoothctl check [--cases N] [--seed S] [--filter NAME]
            [--case-seed CHECK_SEED]
            (run the rts-check property catalog: paper-theorem
            invariants and differential oracles; 'smoothctl check list'
            prints the catalog. A failure prints a shrunk reproducer and
            a CHECK_SEED; rerun with --case-seed (or the CHECK_SEED
            environment variable) and --filter NAME to replay it)
  smoothctl serve [--sessions K] [--rate R] [--delay D] [--link-delay P]
            [--slice-size S] [--per-slot N] [--lifetime SLOTS]
            [--shards W] [--shard-link-rate C] [--overbook NUM/DEN]
            [--queue Q] [--policy tail|head|greedy] [--slot-us U]
            [--listen tcp:HOST:PORT|uds:PATH] [--run-secs T]
            [--replay TRACE.jsonl] [--restore SNAPSHOT]
            [--evict-on-exit true]
            [--trace-out JSONL] [--metrics-addr HOST:PORT]
            (run the sharded smoothd daemon: K loopback CBR sessions
            (--lifetime 0 = unbounded), sessions replayed from a
            recorded event trace, and/or a frame-protocol ingest
            socket served for --run-secs. --slot-us paces every shard
            with an absolute-deadline slot clock and accounts misses;
            --metrics-addr serves Prometheus-style text exposition
            over plain TCP. The 'smoothd' binary is shorthand for
            this subcommand)
  smoothctl snapshot --addr HOST:PORT --out FILE
            (checkpoint a running daemon: every resident session is
            serialized between slots into a CRC-guarded snapshot file,
            verified end to end before it is persisted. Restart with
            'smoothctl serve --restore FILE' (or 'smoothd --restore')
            to load the same session set, byte-exact, into a fresh
            daemon — a rolling restart without losing stream state)
  smoothctl top --addr HOST:PORT [--interval-ms MS] [--count N]
            [--plain true]
            (live dashboard for a running daemon: polls detailed stats
            frames over the ingest socket and refreshes per-shard
            sessions, slices/s, p50/p99 slot latency, and deadline-miss
            rates in place. --count N prints N boards and exits;
            --plain true skips the ANSI screen clearing)
  smoothctl help

Traces use the plain-text format of rts-stream (see its docs).
--trace-out/--metrics-out resolve relative paths under $RESULTS_DIR
when it is set.

--faults SPEC injects deterministic faults (seeded by --seed); clauses
are comma-separated: 'outage@A..B' (link dead on [A,B)),
'dip@A..B=CAP' (egress capped at CAP bytes/slot), 'jitter@A..B+J'
(up to J slots of extra delay), 'drift@S-1/P' / 'drift@S+1/P'
(client clock slow/fast by one slot per P from slot S). Example:
'outage@40..60,jitter@100..200+3'. --resync SKEW/CATCHUP lets the
client re-anchor its playout timer after faults: arrivals late by at
most SKEW slots are played (shifting playout) instead of dropped, and
the accrued shift is recovered at CATCHUP slots per slot.
";
