//! `smoothctl top`: a live terminal dashboard for a running daemon.
//!
//! Connects to a smoothd ingest socket, performs the Hello/Welcome
//! handshake, then polls [`Frame::StatsDetail`] at a fixed interval
//! and renders per-shard rows — sessions, slices/sec, p50/p99 slot
//! latency, deadline-miss rate — plus the stage-timer and reject
//! footers, refreshing in place (ANSI clear; `--plain` disables the
//! escape codes for logs and tests). Rates are deltas between
//! successive polls; the first frame shows absolute totals only.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rts_smoothd::{
    encode_frame, Frame, FrameReader, HistSummary, StatsDetail, MAGIC, PROTOCOL_VERSION,
};

use crate::{Args, CliError};

/// Executes `smoothctl top`.
pub(crate) fn top_cmd(args: &Args) -> Result<String, CliError> {
    let addr = args
        .opt("addr")
        .ok_or_else(|| CliError::usage("option --addr HOST:PORT is required (smoothd --listen)"))?;
    let interval_ms: u64 = args.opt_or("interval-ms", 500)?;
    let count: u64 = args.opt_or("count", 0)?;
    let plain = args.opt("plain").is_some() || args.opt("count").is_some();

    let mut conn = Conn::open(addr)?;
    let mut prev: Option<StatsDetail> = None;
    let interval = Duration::from_millis(interval_ms.max(50));
    let mut frames = 0u64;
    loop {
        let detail = conn.poll()?;
        let board = render_board(&detail, prev.as_ref(), interval);
        frames += 1;
        if count > 0 && frames >= count {
            conn.goodbye();
            return Ok(board);
        }
        if plain {
            println!("{board}");
        } else {
            // Clear screen + home, then the fresh board.
            print!("\x1b[2J\x1b[H{board}");
            let _ = std::io::stdout().flush();
        }
        prev = Some(detail);
        std::thread::sleep(interval);
    }
}

/// A framed connection with the handshake already done. Shared with
/// `smoothctl snapshot`, which speaks the same protocol.
pub(crate) struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    addr: String,
}

impl Conn {
    pub(crate) fn open(addr: &str) -> Result<Conn, CliError> {
        let stream = TcpStream::connect(addr).map_err(|e| CliError::io(addr, e))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .map_err(|e| CliError::io(addr, e))?;
        let mut conn = Conn {
            stream,
            reader: FrameReader::new(),
            addr: addr.to_string(),
        };
        let _ = MAGIC; // carried inside the encoded Hello
        conn.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match conn.recv()? {
            Frame::Welcome { .. } => Ok(conn),
            other => Err(conn.protocol_err(format!("expected Welcome, got {other:?}"))),
        }
    }

    pub(crate) fn send(&mut self, frame: &Frame) -> Result<(), CliError> {
        self.stream
            .write_all(&encode_frame(frame))
            .map_err(|e| CliError::io(&self.addr, e))
    }

    pub(crate) fn recv(&mut self) -> Result<Frame, CliError> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(frame) = self
                .reader
                .next_frame()
                .map_err(|e| self.protocol_err(e.to_string()))?
            {
                return Ok(frame);
            }
            let n = self.stream.read(&mut buf).map_err(|e| CliError::io(&self.addr, e))?;
            if n == 0 {
                return Err(self.protocol_err("connection closed".into()));
            }
            self.reader.extend(&buf[..n]);
        }
    }

    fn poll(&mut self) -> Result<StatsDetail, CliError> {
        self.send(&Frame::StatsDetail)?;
        match self.recv()? {
            Frame::StatsDetailReply(detail) => Ok(*detail),
            other => Err(self.protocol_err(format!("expected StatsDetailReply, got {other:?}"))),
        }
    }

    pub(crate) fn goodbye(&mut self) {
        let _ = self.send(&Frame::Goodbye);
        let _ = self.recv(); // Bye (best effort)
    }

    pub(crate) fn protocol_err(&self, detail: String) -> CliError {
        CliError::io(
            &self.addr,
            std::io::Error::new(std::io::ErrorKind::InvalidData, detail),
        )
    }
}

fn fmt_rate(delta: u64, interval: Duration) -> String {
    let secs = interval.as_secs_f64().max(1e-9);
    format!("{:.0}", delta as f64 / secs)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders one dashboard frame. `prev` (the previous poll) turns the
/// cumulative counters into per-second rates.
fn render_board(detail: &StatsDetail, prev: Option<&StatsDetail>, interval: Duration) -> String {
    let mut out = String::with_capacity(1024);
    let sessions: u64 = detail.shards.iter().map(|s| s.sessions).sum();
    let slots: u64 = detail.shards.iter().map(|s| s.slots).sum();
    let misses: u64 = detail.shards.iter().map(|s| s.deadline_misses).sum();
    let _ = writeln!(
        out,
        "smoothd top — {} shard(s), {sessions} session(s), {slots} slot(s), {} retired, {misses} deadline miss(es)",
        detail.shards.len(),
        detail.retired
    );
    let _ = writeln!(
        out,
        "{:>5} {:>9} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>6}",
        "shard", "sessions", "slices/s", "slots/s", "p50", "p99", "miss%", "overrun", "imb"
    );
    for s in &detail.shards {
        let prev_row = prev.and_then(|p| p.shards.iter().find(|r| r.shard == s.shard));
        let slices_rate = prev_row
            .map(|p| fmt_rate(s.played.saturating_sub(p.played), interval))
            .unwrap_or_else(|| "-".into());
        let slots_rate = prev_row
            .map(|p| fmt_rate(s.slots.saturating_sub(p.slots), interval))
            .unwrap_or_else(|| "-".into());
        let miss_pct = if s.slots > 0 {
            format!("{:.2}", 100.0 * s.deadline_misses as f64 / s.slots as f64)
        } else {
            "-".into()
        };
        // Imbalance gauge: this shard's rebalancer cost relative to the
        // mean (1.00 = perfectly balanced), published by the control
        // plane each rebalance tick.
        let imb = if s.imbalance_milli > 0 {
            format!("{:.2}", s.imbalance_milli as f64 / 1000.0)
        } else {
            "-".into()
        };
        let _ = writeln!(
            out,
            "{:>5} {:>9} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>6}",
            s.shard,
            s.sessions,
            slices_rate,
            slots_rate,
            fmt_ns(s.latency.p50),
            fmt_ns(s.latency.p99),
            miss_pct,
            s.slot_overruns,
            imb
        );
    }
    let stage = |name: &str, h: &HistSummary| {
        if h.count == 0 {
            format!("{name} -")
        } else {
            format!("{name} p50 {} p99 {}", fmt_ns(h.p50), fmt_ns(h.p99))
        }
    };
    let _ = writeln!(
        out,
        "stages:  {} | {} | {} | {}",
        stage("decode", &detail.stages[0]),
        stage("admit", &detail.stages[1]),
        stage("process", &detail.stages[2]),
        stage("retire", &detail.stages[3]),
    );
    if detail.lateness.count > 0 {
        let _ = writeln!(
            out,
            "lateness: p50 {} p99 {} max {} over {} miss(es)",
            fmt_ns(detail.lateness.p50),
            fmt_ns(detail.lateness.p99),
            fmt_ns(detail.lateness.max),
            detail.lateness.count
        );
    }
    let reasons = ["capacity", "infeasible", "zero_rate", "backpressure", "unknown_session", "protocol"];
    let rejects: Vec<String> = reasons
        .iter()
        .zip(detail.rejects.iter())
        .filter(|&(_, &n)| n > 0)
        .map(|(name, n)| format!("{name}={n}"))
        .collect();
    if !rejects.is_empty() {
        let _ = writeln!(out, "rejects: {}", rejects.join(" "));
    }
    if detail.migrations > 0 {
        let last = if detail.last_migration_from != u32::MAX {
            format!(
                ", last {}\u{2192}{}",
                detail.last_migration_from, detail.last_migration_to
            )
        } else {
            String::new()
        };
        let _ = writeln!(out, "rebalance: {} migration(s){last}", detail.migrations);
    }
    if detail.snapshot_bytes > 0 || detail.restored_sessions > 0 {
        let _ = writeln!(
            out,
            "snapshot: {} B written, restored {} session(s)",
            detail.snapshot_bytes, detail.restored_sessions
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rts_smoothd::{serve_tcp, AdmitRequest, Daemon, DaemonConfig, SlotPacing, WirePolicy};
    use std::sync::{Arc, Mutex};

    fn parse(argv: &[&str]) -> Args {
        Args::parse(argv.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn top_renders_one_board_against_a_live_daemon() {
        let cfg = DaemonConfig {
            shards: 2,
            shard_link_rate: 64,
            overbook: (1, 1),
            queue_capacity: 64,
            pacing: SlotPacing::Free,
            record_events: false,
            rebalance: Default::default(),
        };
        let mut daemon = Daemon::start(cfg);
        let req = AdmitRequest {
            rate: 4,
            delay: 3,
            link_delay: 1,
            buffer: 0,
            weight: 1,
            policy: WirePolicy::Tail,
            per_slot: 4,
            slice_size: 1,
            lifetime: 10,
        };
        for _ in 0..4 {
            daemon.admit(&req).unwrap();
        }
        assert!(daemon.wait_idle(Duration::from_secs(20)));
        let shared = Arc::new(Mutex::new(daemon));
        let server = serve_tcp(Arc::clone(&shared), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();

        let out = top_cmd(&parse(&["top", "--addr", &addr, "--count", "1"])).unwrap();
        assert!(out.contains("smoothd top — 2 shard(s)"), "{out}");
        assert!(out.contains("4 retired"), "{out}");
        assert!(out.lines().count() >= 4, "board has header + rows:\n{out}");

        server.stop();
        let daemon = Arc::try_unwrap(shared)
            .map(|m| m.into_inner().unwrap())
            .unwrap_or_else(|_| panic!("ingest threads still hold the daemon"));
        daemon.shutdown(true);
    }

    #[test]
    fn top_requires_an_addr() {
        let e = top_cmd(&parse(&["top"])).unwrap_err();
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn top_against_a_dead_port_is_an_io_error() {
        // Port 1 on localhost: connection refused immediately.
        let e = top_cmd(&parse(&["top", "--addr", "127.0.0.1:1", "--count", "1"])).unwrap_err();
        assert_eq!(e.exit_code(), 1);
    }

    #[test]
    fn rates_appear_from_the_second_board() {
        let mk = |slots: u64, played: u64| StatsDetail {
            retired: 0,
            snapshot_bytes: 0,
            snapshot_duration_ns: 0,
            restored_sessions: 0,
            migrations: 0,
            last_migration_from: u32::MAX,
            last_migration_to: u32::MAX,
            rejects: [0; 6],
            lateness: HistSummary::default(),
            stages: [HistSummary::default(); 4],
            shards: vec![rts_smoothd::ShardRow {
                shard: 0,
                sessions: 1,
                slots,
                played,
                sent_bytes: 0,
                deadline_misses: 0,
                slot_overruns: 0,
                imbalance_milli: 0,
                latency: HistSummary::default(),
            }],
        };
        let first = render_board(&mk(100, 500), None, Duration::from_millis(500));
        assert!(first.contains(" - "), "no rates without a prior poll:\n{first}");
        let second = render_board(
            &mk(150, 900),
            Some(&mk(100, 500)),
            Duration::from_millis(500),
        );
        // 400 slices / 0.5 s = 800/s; 50 slots / 0.5 s = 100/s.
        assert!(second.contains("800"), "{second}");
        assert!(second.contains("100"), "{second}");
    }

    #[test]
    fn rebalance_footer_and_imbalance_gauge_render() {
        let row = |shard: u32, imbalance_milli: u64| rts_smoothd::ShardRow {
            shard,
            sessions: 10,
            slots: 5,
            played: 0,
            sent_bytes: 0,
            deadline_misses: 0,
            slot_overruns: 0,
            imbalance_milli,
            latency: HistSummary::default(),
        };
        let detail = StatsDetail {
            retired: 0,
            snapshot_bytes: 0,
            snapshot_duration_ns: 0,
            restored_sessions: 0,
            migrations: 7,
            last_migration_from: 1,
            last_migration_to: 0,
            rejects: [0; 6],
            lateness: HistSummary::default(),
            stages: [HistSummary::default(); 4],
            shards: vec![row(0, 400), row(1, 1600)],
        };
        let board = render_board(&detail, None, Duration::from_millis(500));
        assert!(board.contains("rebalance: 7 migration(s), last 1\u{2192}0"), "{board}");
        assert!(board.contains("0.40"), "imbalance gauge missing:\n{board}");
        assert!(board.contains("1.60"), "imbalance gauge missing:\n{board}");
        // No footer before the first migration.
        let quiet = StatsDetail {
            migrations: 0,
            last_migration_from: u32::MAX,
            last_migration_to: u32::MAX,
            ..detail
        };
        let board = render_board(&quiet, None, Duration::from_millis(500));
        assert!(!board.contains("rebalance:"), "{board}");
    }
}
