//! `smoothctl snapshot`: checkpoint a running daemon to a file.
//!
//! Connects to a smoothd ingest socket, performs the Hello/Welcome
//! handshake, sends [`Frame::Snapshot`], and reassembles the chunked
//! reply — [`Frame::SnapshotChunk`] frames followed by a terminal
//! [`Frame::SnapshotAck`] carrying the session and byte totals. The
//! image is verified locally (full decode) before anything touches
//! disk, then written to a temporary file and renamed into place, so
//! the named path only ever holds a complete snapshot. A later
//! `smoothctl serve --restore FILE` (or `smoothd --restore FILE`)
//! loads it into a fresh daemon with byte-exact session state.

use std::fmt::Write as _;

use rts_smoothd::{read_snapshot, Frame};

use crate::top::Conn;
use crate::{Args, CliError};

/// Executes `smoothctl snapshot`.
pub(crate) fn snapshot_cmd(args: &Args) -> Result<String, CliError> {
    let addr = args
        .opt("addr")
        .ok_or_else(|| CliError::usage("option --addr HOST:PORT is required (smoothd --listen)"))?;
    let out_path = args
        .opt("out")
        .ok_or_else(|| CliError::usage("option --out FILE is required"))?;

    let mut conn = Conn::open(addr)?;
    conn.send(&Frame::Snapshot)?;
    let mut bytes = Vec::new();
    let (sessions, total) = loop {
        match conn.recv()? {
            Frame::SnapshotChunk { data } => bytes.extend_from_slice(&data),
            Frame::SnapshotAck {
                sessions,
                bytes: total,
            } => break (sessions, total),
            other => {
                return Err(
                    conn.protocol_err(format!("expected SnapshotChunk or SnapshotAck, got {other:?}"))
                )
            }
        }
    };
    conn.goodbye();
    if bytes.len() as u64 != total {
        return Err(conn.protocol_err(format!(
            "snapshot stream incomplete: received {} of {total} bytes",
            bytes.len()
        )));
    }
    // Decode the whole image before persisting: a snapshot this
    // command writes is one `--restore` will accept.
    let decoded = read_snapshot(&bytes).map_err(|e| {
        conn.protocol_err(format!("daemon sent an undecodable snapshot: {e}"))
    })?;
    debug_assert_eq!(decoded.len() as u64, sessions);

    // Write-then-rename: the final path never holds a torn file even
    // if this process dies mid-write.
    let tmp = format!("{out_path}.tmp");
    std::fs::write(&tmp, &bytes).map_err(|e| CliError::io(&tmp, e))?;
    std::fs::rename(&tmp, out_path).map_err(|e| CliError::io(out_path, e))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "snapshot:      {sessions} session(s), {} B -> {out_path}",
        bytes.len()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rts_smoothd::{serve_tcp, AdmitRequest, Daemon, DaemonConfig, SlotPacing, WirePolicy};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    fn parse(argv: &[&str]) -> Args {
        Args::parse(argv.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn snapshot_round_trips_through_a_live_socket_and_restores() {
        let cfg = DaemonConfig {
            shards: 2,
            shard_link_rate: 64,
            overbook: (1, 1),
            queue_capacity: 64,
            pacing: SlotPacing::Free,
            record_events: false,
            rebalance: Default::default(),
        };
        let mut daemon = Daemon::start(cfg.clone());
        let req = AdmitRequest {
            rate: 4,
            delay: 3,
            link_delay: 1,
            buffer: 0,
            weight: 1,
            policy: WirePolicy::Tail,
            per_slot: 4,
            slice_size: 1,
            lifetime: 0, // unbounded: resident across the checkpoint
        };
        for _ in 0..6 {
            daemon.admit(&req).unwrap();
        }
        std::thread::sleep(Duration::from_millis(10));
        let shared = Arc::new(Mutex::new(daemon));
        let server = serve_tcp(Arc::clone(&shared), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();

        let dir = std::env::temp_dir().join(format!("snapctl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.snap");
        let out = snapshot_cmd(&parse(&[
            "snapshot",
            "--addr",
            &addr,
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("6 session(s)"), "{out}");
        assert!(!dir.join("live.snap.tmp").exists(), "tmp file renamed away");

        server.stop();
        let daemon = Arc::try_unwrap(shared)
            .map(|m| m.into_inner().unwrap())
            .unwrap_or_else(|_| panic!("ingest threads still hold the daemon"));
        daemon.shutdown(false);

        // The written file restores into a fresh daemon.
        let bytes = std::fs::read(&path).unwrap();
        let mut restored = Daemon::start(cfg);
        assert_eq!(restored.restore(&bytes).unwrap(), 6);
        let report = restored.shutdown(false);
        assert_eq!(report.retired_sessions, 6);
        assert!(report.totals.conserved(), "{:?}", report.totals);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_requires_addr_and_out() {
        assert_eq!(parse_err(&["snapshot"]), 2);
        assert_eq!(parse_err(&["snapshot", "--addr", "127.0.0.1:9"]), 2);
    }

    fn parse_err(argv: &[&str]) -> i32 {
        snapshot_cmd(&parse(argv)).unwrap_err().exit_code()
    }

    #[test]
    fn snapshot_against_a_dead_port_is_an_io_error() {
        let e = snapshot_cmd(&parse(&[
            "snapshot",
            "--addr",
            "127.0.0.1:1",
            "--out",
            "/tmp/unused.snap",
        ]))
        .unwrap_err();
        assert_eq!(e.exit_code(), 1);
    }
}
