use std::error::Error;
use std::fmt;

/// Errors surfaced to the `smoothctl` user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// The command line was malformed; the message says how.
    Usage(String),
    /// A trace file could not be read or written.
    Io {
        /// The file involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A trace file was syntactically invalid.
    Trace(rts_stream::StreamError),
}

impl CliError {
    pub(crate) fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }

    pub(crate) fn io(path: &str, source: std::io::Error) -> CliError {
        CliError::Io {
            path: path.to_string(),
            source,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io { path, source } => write!(f, "cannot access {path}: {source}"),
            CliError::Trace(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Trace(e) => Some(e),
            CliError::Usage(_) => None,
        }
    }
}

impl From<rts_stream::StreamError> for CliError {
    fn from(e: rts_stream::StreamError) -> Self {
        CliError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            CliError::usage("missing thing").to_string(),
            "usage error: missing thing"
        );
        let io = CliError::io("f.txt", std::io::Error::other("nope"));
        assert!(io.to_string().contains("f.txt"));
        let tr = CliError::from(rts_stream::StreamError::EmptySlice { time: 1 });
        assert!(tr.to_string().contains("invalid trace"));
        assert!(Error::source(&tr).is_some());
    }
}
