use std::error::Error;
use std::fmt;

/// Errors surfaced to the `smoothctl` user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// The command line was malformed; the message says how.
    Usage(String),
    /// A trace file could not be read or written.
    Io {
        /// The file involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A trace file was syntactically invalid.
    Trace(rts_stream::StreamError),
    /// An event-trace (JSONL) file could not be replayed.
    Events {
        /// The file involved.
        path: String,
        /// The underlying error (I/O or malformed line).
        source: rts_obs::ReplayError,
    },
    /// One or more `smoothctl check` properties failed; the report
    /// carries the shrunk reproducers and their `CHECK_SEED`s.
    Check {
        /// The full deterministic check report.
        report: String,
        /// Number of failed checks.
        failed: usize,
    },
}

impl CliError {
    pub(crate) fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }

    pub(crate) fn io(path: &str, source: std::io::Error) -> CliError {
        CliError::Io {
            path: path.to_string(),
            source,
        }
    }

    pub(crate) fn events(path: &str, source: rts_obs::ReplayError) -> CliError {
        CliError::Events {
            path: path.to_string(),
            source,
        }
    }

    /// The process exit code this error deserves: 2 for command-line
    /// misuse (with usage text), 1 for runtime failures (unreadable
    /// files, malformed traces).
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io { path, source } => write!(f, "cannot access {path}: {source}"),
            CliError::Trace(e) => write!(f, "invalid trace: {e}"),
            CliError::Events { path, source } => {
                write!(f, "cannot replay event trace {path}: {source}")
            }
            CliError::Check { report, failed } => {
                write!(f, "{} check(s) failed\n{}", failed, report.trim_end())
            }
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Trace(e) => Some(e),
            CliError::Events { source, .. } => Some(source),
            CliError::Usage(_) | CliError::Check { .. } => None,
        }
    }
}

impl From<rts_stream::StreamError> for CliError {
    fn from(e: rts_stream::StreamError) -> Self {
        CliError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            CliError::usage("missing thing").to_string(),
            "usage error: missing thing"
        );
        let io = CliError::io("f.txt", std::io::Error::other("nope"));
        assert!(io.to_string().contains("f.txt"));
        let tr = CliError::from(rts_stream::StreamError::EmptySlice { time: 1 });
        assert!(tr.to_string().contains("invalid trace"));
        assert!(Error::source(&tr).is_some());
        let ev = CliError::events(
            "e.jsonl",
            rts_obs::ReplayError::Io(std::io::Error::other("gone")),
        );
        assert!(ev.to_string().contains("e.jsonl"));
        assert!(Error::source(&ev).is_some());
    }

    #[test]
    fn exit_codes_separate_usage_from_runtime_failures() {
        assert_eq!(CliError::usage("x").exit_code(), 2);
        assert_eq!(CliError::io("f", std::io::Error::other("nope")).exit_code(), 1);
        assert_eq!(
            CliError::from(rts_stream::StreamError::EmptySlice { time: 0 }).exit_code(),
            1
        );
    }
}
