//! A small `--key value` argument parser (no external dependencies).

use std::collections::BTreeMap;

use crate::CliError;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    command: String,
    positional: Vec<String>,
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when no subcommand is present, an
    /// option is missing its value, or an option is repeated.
    pub fn parse<I, S>(raw: I) -> Result<Args, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = raw.into_iter().map(Into::into);
        let command = iter
            .next()
            .ok_or_else(|| CliError::usage("missing subcommand"))?;
        let mut args = Args {
            command,
            ..Args::default()
        };
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::usage(format!("option --{key} needs a value")))?;
                if args.options.insert(key.to_string(), value).is_some() {
                    return Err(CliError::usage(format!("option --{key} given twice")));
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// The subcommand name.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// The `i`-th positional argument, required.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] naming `what` when absent.
    pub fn positional(&self, i: usize, what: &str) -> Result<&str, CliError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| CliError::usage(format!("missing {what}")))
    }

    /// An optional string option.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An optional parsed option.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] if present but unparsable.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.opt(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| CliError::usage(format!("option --{key}: cannot parse {v:?}"))),
        }
    }

    /// A required parsed option.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] if absent or unparsable.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        self.opt_parse(key)?
            .ok_or_else(|| CliError::usage(format!("missing required option --{key}")))
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] if present but unparsable.
    pub fn opt_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        Ok(self.opt_parse(key)?.unwrap_or(default))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_positionals_and_options() {
        let a = Args::parse(["simulate", "trace.txt", "--buffer", "10", "--rate", "3"]).unwrap();
        assert_eq!(a.command(), "simulate");
        assert_eq!(a.positional(0, "trace").unwrap(), "trace.txt");
        assert_eq!(a.require::<u64>("buffer").unwrap(), 10);
        assert_eq!(a.opt_or::<u64>("delay", 7).unwrap(), 7);
        assert_eq!(a.opt("rate"), Some("3"));
    }

    #[test]
    fn missing_subcommand() {
        let e = Args::parse(Vec::<String>::new()).unwrap_err();
        assert!(e.to_string().contains("missing subcommand"));
    }

    #[test]
    fn option_without_value() {
        let e = Args::parse(["x", "--flag"]).unwrap_err();
        assert!(e.to_string().contains("--flag needs a value"));
    }

    #[test]
    fn repeated_option_rejected() {
        let e = Args::parse(["x", "--a", "1", "--a", "2"]).unwrap_err();
        assert!(e.to_string().contains("given twice"));
    }

    #[test]
    fn unparsable_option() {
        let a = Args::parse(["x", "--n", "abc"]).unwrap();
        assert!(a.require::<u64>("n").is_err());
        assert!(a.opt_parse::<u64>("n").is_err());
    }

    #[test]
    fn missing_positional_names_what() {
        let a = Args::parse(["stats"]).unwrap();
        let e = a.positional(0, "trace file").unwrap_err();
        assert!(e.to_string().contains("missing trace file"));
    }
}
