//! `smoothctl` binary entry point: parse, run, print.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = if raw.is_empty() {
        Err(rts_cli::CliError::Usage("missing subcommand".into()))
    } else {
        rts_cli::Args::parse(raw)
    };
    let result = parsed.and_then(|args| rts_cli::run(&args));
    match result {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("smoothctl: {e}");
            if matches!(e, rts_cli::CliError::Usage(_)) {
                eprintln!("\n{}", rts_cli::USAGE);
            }
            std::process::exit(e.exit_code());
        }
    }
}
