//! `smoothd` binary: shorthand for `smoothctl serve`.

fn main() {
    let mut raw: Vec<String> = vec!["serve".into()];
    raw.extend(std::env::args().skip(1));
    let result = rts_cli::Args::parse(raw).and_then(|args| rts_cli::run(&args));
    match result {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("smoothd: {e}");
            if matches!(e, rts_cli::CliError::Usage(_)) {
                eprintln!("\n{}", rts_cli::USAGE);
            }
            std::process::exit(e.exit_code());
        }
    }
}
