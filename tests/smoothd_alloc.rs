//! Long-run memory regression test for the smoothd shard loop
//! (ISSUE 6 acceptance: the steady-state slot loop is allocation-free).
//!
//! A counting global allocator wraps the system allocator; after a
//! warmup phase lets every scratch vector, ring, and queue reach its
//! high-water capacity, a long measured run of [`Shard::process_slot`]
//! must perform **zero** heap allocations and free nothing — the same
//! style as the PR 4 hot-path bound, but over the whole serving loop
//! (fair grants, server steps, link delivery, playout rings) instead
//! of one policy.
//!
//! The test drives `Shard` directly on the test thread: the daemon's
//! workers run exactly this loop, and a single thread keeps the global
//! counter attributable.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rts_smoothd::{AdmitRequest, Shard, WirePolicy};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counters are updated with
// atomics and never touch the allocator's own invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::SeqCst),
        DEALLOCS.load(Ordering::SeqCst),
    )
}

#[test]
fn steady_state_shard_loop_is_allocation_free() {
    let sessions = 128u64;
    let rate = 4u64;
    let mut shard = Shard::new(0, rate * sessions, (1, 1));
    let req = AdmitRequest {
        rate,
        delay: 4,
        link_delay: 1,
        buffer: 0, // balanced B = R·D
        weight: 1,
        policy: WirePolicy::Tail,
        per_slot: rate as u32,
        slice_size: rate as u32,
        lifetime: 0, // unbounded: pure steady state, no retirements
    };
    for id in 0..sessions {
        shard.admit(id, &req).expect("link provisioned exactly");
    }

    // Warmup: scratch vectors, server rings, link queues, and playout
    // rings all reach their steady capacity within the first pipeline
    // fill (P + D slots) — 256 slots is far past any doubling.
    for _ in 0..256 {
        shard.process_slot();
    }

    let (a0, d0) = snapshot();
    const MEASURED_SLOTS: u64 = 2_000;
    for _ in 0..MEASURED_SLOTS {
        shard.process_slot();
    }
    let (a1, d1) = snapshot();

    assert_eq!(
        a1 - a0,
        0,
        "steady-state shard loop allocated {} time(s) over {MEASURED_SLOTS} slots",
        a1 - a0
    );
    assert_eq!(
        d1 - d0,
        0,
        "steady-state shard loop freed {} time(s) over {MEASURED_SLOTS} slots \
         (something is churning heap memory)",
        d1 - d0
    );

    // The loop did real work the whole time.
    let totals = shard.totals();
    assert!(
        totals.played_bytes >= sessions * rate * MEASURED_SLOTS / 2,
        "sessions stalled: only {} bytes played",
        totals.played_bytes
    );
}

#[test]
fn session_churn_returns_memory_to_the_allocator() {
    // Not allocation-free (admission and eviction may allocate), but
    // net heap growth across full churn cycles must stay bounded: the
    // daemon cannot leak a session's worth of state per admit/evict.
    let rate = 4u64;
    let mut shard = Shard::new(0, rate * 64, (1, 1));
    let req = AdmitRequest {
        rate,
        delay: 4,
        link_delay: 1,
        buffer: 0,
        weight: 1,
        policy: WirePolicy::Tail,
        per_slot: rate as u32,
        slice_size: rate as u32,
        lifetime: 8,
    };
    let mut retirements = Vec::new();
    // Warmup cycles.
    let mut next_id = 0u64;
    for _ in 0..8 {
        for _ in 0..32 {
            shard.admit(next_id, &req).expect("fits");
            next_id += 1;
        }
        while shard.sessions() > 0 {
            shard.process_slot();
        }
        shard.take_retirements(&mut retirements);
        retirements.clear();
    }

    let (a0, _) = snapshot();
    let net0 = ALLOCS.load(Ordering::SeqCst) as i64 - DEALLOCS.load(Ordering::SeqCst) as i64;
    for _ in 0..32 {
        for _ in 0..32 {
            shard.admit(next_id, &req).expect("fits");
            next_id += 1;
        }
        while shard.sessions() > 0 {
            shard.process_slot();
        }
        shard.take_retirements(&mut retirements);
        retirements.clear();
    }
    let net1 = ALLOCS.load(Ordering::SeqCst) as i64 - DEALLOCS.load(Ordering::SeqCst) as i64;
    let (a1, _) = snapshot();

    // Live-allocation count must not trend upward with cycles: allow a
    // small constant slack for lazily grown scratch, nothing per-cycle.
    assert!(
        net1 - net0 <= 64,
        "heap grows with churn: {} net live allocations over 32 cycles \
         ({} total allocations)",
        net1 - net0,
        a1 - a0
    );
}
