//! Cross-crate integration tests for the fault-injection layer:
//! byte conservation under every fault model, bit-determinism of
//! seeded runs, and graceful degradation via the client resync policy.

use realtime_smoothing::{
    simulate, simulate_faulted, FaultPlan, FaultyLink, Mux, ResyncPolicy, RoundRobin, SessionSpec,
    SimConfig, SmoothingParams, TailDrop,
};
use rts_sim::{simulate_tandem, simulate_tandem_with_links, HopConfig, Link};
use rts_faults::simulate_faulted_probed;
use rts_obs::{Event, VecProbe};
use rts_stream::gen::{MpegConfig, MpegSource};
use rts_stream::slicing::Slicing;
use rts_stream::weight::WeightAssignment;
use rts_stream::InputStream;

fn mpeg_stream(seed: u64, frames: usize) -> InputStream {
    MpegSource::new(MpegConfig::cnn_like(), seed)
        .frames(frames)
        .materialize(Slicing::PerByte, WeightAssignment::MPEG_12_8_1)
}

fn config_for(stream: &InputStream) -> SimConfig {
    let rate = stream.stats().rate_at(1.1).max(1);
    SimConfig::new(SmoothingParams::balanced_from_rate_delay(rate, 6, 2))
}

/// `config_for` with an effectively unbounded client buffer. A resync
/// client holds late data a strict client would drop, so comparing the
/// two fairly needs room for that backlog (graceful degradation costs
/// buffer space on top of latency — with the default B-sized client
/// buffer a sustained dip can make resync *lose* to strict via
/// overflow, which is expected and why this helper exists).
fn roomy_config_for(stream: &InputStream) -> SimConfig {
    SimConfig {
        client_capacity: Some(1 << 20),
        ..config_for(stream)
    }
}

/// One representative plan per fault model, plus a combined one. Every
/// byte must be accounted (played + dropped + residual) no matter how
/// the channel misbehaves — faults may cost loss, never corruption.
#[test]
fn conservation_holds_under_every_fault_model() {
    let stream = mpeg_stream(11, 120);
    let config = roomy_config_for(&stream);
    let specs = [
        "outage@20..35",
        "dip@10..80=7",
        "jitter@0..120+5",
        "drift@0+1/6",
        "drift@0-1/6",
        "outage@20..35,dip@40..80=7,jitter@90..140+4,drift@10-1/9",
    ];
    for spec in specs {
        let plan = FaultPlan::parse(spec, 99).unwrap();
        let strict = simulate_faulted(&stream, config, plan.clone(), TailDrop::new());
        strict
            .metrics
            .check_conservation()
            .unwrap_or_else(|e| panic!("conservation under {spec:?} (strict): {e}"));
        let graceful = simulate_faulted(
            &stream,
            config.with_resync(ResyncPolicy::new(20, 1)),
            plan,
            TailDrop::new(),
        );
        graceful
            .metrics
            .check_conservation()
            .unwrap_or_else(|e| panic!("conservation under {spec:?} (resync): {e}"));
        assert!(
            graceful.metrics.played_bytes >= strict.metrics.played_bytes,
            "resync must not lose bytes vs strict under {spec:?}: {} vs {}",
            graceful.metrics.played_bytes,
            strict.metrics.played_bytes
        );
    }
}

/// A faulted run is a pure function of `(stream, config, plan, policy)`:
/// two runs with the same seed produce identical metrics *and* an
/// identical event trace, while a different jitter seed diverges.
#[test]
fn faulted_runs_are_bit_deterministic_in_the_seed() {
    let stream = mpeg_stream(3, 100);
    let config = config_for(&stream).with_resync(ResyncPolicy::new(12, 2));
    let plan = FaultPlan::parse("jitter@0..200+6,outage@50..60", 1234).unwrap();

    let mut probe_a = VecProbe::new();
    let a = simulate_faulted_probed(&stream, config, plan.clone(), TailDrop::new(), &mut probe_a);
    let mut probe_b = VecProbe::new();
    let b = simulate_faulted_probed(&stream, config, plan.clone(), TailDrop::new(), &mut probe_b);
    assert_eq!(a.metrics, b.metrics, "same seed, same metrics");
    assert_eq!(
        probe_a.events, probe_b.events,
        "same seed, same event-for-event trace"
    );

    let mut probe_c = VecProbe::new();
    let c = simulate_faulted_probed(
        &stream,
        config,
        plan.with_seed(4321),
        TailDrop::new(),
        &mut probe_c,
    );
    assert_ne!(
        probe_a.events, probe_c.events,
        "different jitter seeds must draw different delays"
    );
    c.metrics.check_conservation().unwrap();
}

/// The headline behaviour: after an outage a resyncing client
/// re-anchors its playout timer and keeps playing, where a strict
/// client drops everything that missed its deadline.
#[test]
fn resync_degrades_gracefully_where_strict_playout_collapses() {
    let stream = mpeg_stream(7, 150);
    // Room to absorb the post-outage flush: graceful degradation costs
    // buffer space on top of latency.
    let config = roomy_config_for(&stream);
    let plan = FaultPlan::parse("outage@30..45", 5).unwrap();

    let strict = simulate_faulted(&stream, config, plan.clone(), TailDrop::new());
    let graceful = simulate_faulted(
        &stream,
        config.with_resync(ResyncPolicy::new(15, 1)),
        plan,
        TailDrop::new(),
    );
    assert!(
        strict.metrics.client_dropped_slices > 0,
        "the outage must hurt a strict client: {:?}",
        strict.metrics
    );
    assert!(
        graceful.metrics.played_bytes > strict.metrics.played_bytes,
        "resync must rescue playout: {} vs {}",
        graceful.metrics.played_bytes,
        strict.metrics.played_bytes
    );
    // The no-fault baseline bounds both from above.
    let ideal = simulate(&stream, config, TailDrop::new());
    assert!(graceful.metrics.played_bytes <= ideal.metrics.played_bytes);
}

/// Faults compose with the tandem chain: each hop takes its own
/// `FaultyLink`, and an outage on the middle hop costs playout without
/// breaking slice accounting.
#[test]
fn tandem_hops_take_independent_faulty_links() {
    let stream = mpeg_stream(21, 60);
    let rate = stream.stats().rate_at(1.3).max(1);
    let hops = [
        HopConfig { buffer: rate * 4, rate, link_delay: 1 },
        HopConfig { buffer: rate * 4, rate, link_delay: 1 },
    ];

    let clean = simulate_tandem(&stream, &hops, 4, |_| TailDrop::new());
    let faulted = simulate_tandem_with_links(
        &stream,
        &hops,
        4,
        |_| TailDrop::new(),
        vec![
            FaultyLink::new(Link::new(1), FaultPlan::new(2)),
            FaultyLink::new(Link::new(1), FaultPlan::new(2).outage(10, 25)),
        ],
    );

    assert!(
        faulted.played_bytes < clean.played_bytes,
        "a mid-chain outage must cost playout: {} vs {}",
        faulted.played_bytes,
        clean.played_bytes
    );
    let accounted = faulted.played_slices
        + faulted.hop_drops.iter().sum::<u64>()
        + faulted.client_drops;
    assert_eq!(
        accounted,
        stream.slice_count() as u64,
        "every slice accounted across the faulted chain"
    );
}

/// Per-session fault plans thread through the shared-link mux: every
/// admitted slice is still accounted per session, and only the faulted
/// session pays for its outage.
#[test]
fn mux_sessions_fail_independently_under_per_session_plans() {
    let make = |seed| mpeg_stream(seed, 80);
    let streams: Vec<InputStream> = (0..3).map(make).collect();
    let rates: Vec<u64> = streams.iter().map(|s| s.stats().rate_at(1.2).max(1)).collect();
    let link_rate: u64 = rates.iter().sum();

    let run = |faulted_session: Option<usize>| {
        let mut mux = Mux::new(link_rate, RoundRobin::new());
        for (i, (s, &r)) in streams.iter().zip(&rates).enumerate() {
            let params = SmoothingParams::balanced_from_rate_delay(r, 8, 1);
            let mut spec = SessionSpec::new(s.clone(), params, Box::new(TailDrop::new()))
                .with_label(format!("s{i}"));
            if faulted_session == Some(i) {
                spec = spec
                    .with_faults(FaultPlan::parse("outage@10..30", 7).unwrap())
                    .with_resync(ResyncPolicy::new(25, 1));
            }
            mux.admit(spec).unwrap();
        }
        mux.run()
    };

    let clean = run(None);
    let faulted = run(Some(1));
    for (i, (m, s)) in faulted.sessions.iter().zip(&streams).enumerate() {
        assert_eq!(
            m.played_slices + m.server_dropped_slices + m.client_dropped_slices,
            s.slice_count() as u64,
            "slice conservation for session {i}: {m:?}"
        );
    }
    // Untouched sessions deliver exactly what they deliver in the clean
    // run; the faulted one cannot do better.
    assert_eq!(faulted.sessions[0].delivered_bytes, clean.sessions[0].delivered_bytes);
    assert_eq!(faulted.sessions[2].delivered_bytes, clean.sessions[2].delivered_bytes);
    assert!(faulted.sessions[1].delivered_bytes <= clean.sessions[1].delivered_bytes);
}

/// ResyncPolicy x ClockDrift interaction: a fast client clock makes
/// deadlines slip repeatedly, and every slip the resync policy absorbs
/// must be within `max_skew` — across drift directions, periods, and
/// catch-up rates, with and without a concurrent outage.
#[test]
fn resync_skews_stay_bounded_under_clock_drift() {
    let stream = mpeg_stream(13, 120);
    let config = roomy_config_for(&stream);
    // (spec, max_skew, catchup, drift direction makes deadlines slip?)
    let matrix = [
        ("drift@0+1/5", 4, 1, true),
        ("drift@0+1/3", 9, 2, true),
        ("drift@10-1/4", 6, 1, false),
        ("drift@0+1/4,outage@30..40", 15, 3, true),
    ];
    for (spec, max_skew, catchup, slips) in matrix {
        let plan = FaultPlan::parse(spec, 42).unwrap();
        let mut probe = VecProbe::new();
        let report = simulate_faulted_probed(
            &stream,
            config.with_resync(ResyncPolicy::new(max_skew, catchup)),
            plan,
            TailDrop::new(),
            &mut probe,
        );
        let skews: Vec<u64> = probe
            .events
            .iter()
            .filter_map(|e| match e {
                Event::ClientResync { skew, .. } => Some(*skew),
                _ => None,
            })
            .collect();
        if slips {
            assert!(
                !skews.is_empty(),
                "{spec}: a fast clock must force timer re-anchors"
            );
        }
        for &skew in &skews {
            assert!(
                skew <= max_skew,
                "{spec}: absorbed skew {skew} > max_skew {max_skew}"
            );
        }
        report
            .metrics
            .check_conservation()
            .unwrap_or_else(|e| panic!("{spec}: conservation under drift+resync: {e}"));
        assert_eq!(
            report.metrics.residual_bytes, 0,
            "{spec}: catch-up must terminate so the run drains"
        );
    }
}

/// Catch-up terminates: after one absorbed skew the re-anchor offset is
/// clawed back at `catchup` slots per step, reaching zero, and later
/// on-time slices play strictly at their original deadlines again.
#[test]
fn resync_catchup_recovers_the_timer_offset() {
    use rts_core::{Client, SentChunk};
    use rts_stream::{FrameKind, Slice, SliceId};

    let unit = |id: u64, arrival: u64| Slice {
        id: SliceId(id),
        frame: id,
        arrival,
        size: 1,
        weight: 1,
        kind: FrameKind::Generic,
    };
    let chunk = |time: u64, slice: Slice| SentChunk {
        time,
        slice,
        bytes: 1,
        completed: true,
    };

    let mut client = Client::new(100, 3, 0).with_resync(ResyncPolicy::new(5, 1));
    // Slice 0: deadline 3, delivered at 5 -> skew 2 absorbed.
    for t in 0..5 {
        assert!(client.step(t, &[]).resyncs.is_empty());
    }
    let st = client.step(5, &[chunk(5, unit(0, 0))]);
    assert_eq!(st.resyncs, vec![2], "the slip must be absorbed, not dropped");
    assert_eq!(st.played.len(), 1, "the late slice still plays");

    // The offset decays by catchup = 1 per step and never rebounds.
    let mut offsets = vec![client.resync_offset()];
    for t in 6..10 {
        client.step(t, &[]);
        offsets.push(client.resync_offset());
    }
    assert!(
        offsets.windows(2).all(|w| w[1] <= w[0]),
        "offset must decay monotonically: {offsets:?}"
    );
    assert_eq!(
        client.resync_offset(),
        0,
        "catch-up must fully recover the offset: {offsets:?}"
    );

    // A later on-time slice plays exactly at its own deadline again.
    let late = unit(1, 20);
    client.step(20, &[chunk(20, late)]);
    for t in 21..23 {
        assert!(client.step(t, &[]).played.is_empty(), "t={t}: too early");
    }
    let st = client.step(23, &[]);
    assert_eq!(
        st.played.len(),
        1,
        "after recovery the original timetable holds"
    );
    assert!(client.is_drained());
}

/// Drift and resync interact with the catch-up rate: a faster catch-up
/// never plays fewer bytes than a slower one under the same fast-clock
/// drift (it merely trades latency back sooner), and both stay within
/// the no-drift ideal.
#[test]
fn faster_catchup_never_costs_playout_under_drift() {
    let stream = mpeg_stream(29, 120);
    let config = roomy_config_for(&stream);
    let plan = || FaultPlan::parse("drift@0+1/4", 8).unwrap();
    let ideal = simulate(&stream, config, TailDrop::new());
    let mut played = Vec::new();
    for catchup in [1, 2, 4] {
        let report = simulate_faulted(
            &stream,
            config.with_resync(ResyncPolicy::new(10, catchup)),
            plan(),
            TailDrop::new(),
        );
        report.metrics.check_conservation().unwrap();
        assert!(
            report.metrics.played_bytes <= ideal.metrics.played_bytes,
            "catchup {catchup}: drift cannot beat the no-drift ideal"
        );
        played.push(report.metrics.played_bytes);
    }
    assert!(
        played.windows(2).all(|w| w[1] >= w[0]),
        "played bytes must not regress as catch-up accelerates: {played:?}"
    );
}
