//! The quantities inside the Theorem 4.1 proof, checked as executable
//! inequalities on instrumented greedy runs.
//!
//! The paper's proof composes four lemmas over an interval partition.
//! Each is checked here on random weighted unit-slice streams, with the
//! greedy server run step by step and the proof's quantities — `S(I)`
//! (weight sent in interval `I`), `Bs(t)` (weight stored at `t`), and
//! `V(F)` (the most valuable sub-multiset of size `≤ B − Lmax + 1`) —
//! computed directly from the schedule:
//!
//! * **Lemma 4.3**: `w(S(I)) ≥ w(V(A(I))) − w(Bs(end(I)))`;
//! * **Lemma 4.4**: `w(Bs(t)) ≤ Σ_{i<D} w(S(t + i))` with `D = B/R`;
//! * **Lemma 4.5**: `2·w(S(I)) + w(Bs(end)) − w(Bs(start)) ≥ w(V(A(I)))`
//!   for length-`D` intervals;
//! * **Lemma 4.6**: no schedule collects more than
//!   `(B + ℓR)/(B − 2(Lmax−1)) · w(V(A(I)))` from an ℓ-interval —
//!   checked against the exact offline optimum of the restricted
//!   stream.

use realtime_smoothing::{GreedyByteValue, InputStream, Server, SliceSpec};
use rts_offline::optimal_unit_benefit;
use rts_stream::rng::SplitMix64;
use rts_stream::{FrameKind, Weight};

/// A fully instrumented greedy run over a unit-slice stream:
/// `sent_weight[t]` = weight transmitted at step t; `stored_weight[t]`
/// = weight in the buffer after step t.
struct GreedyTrace {
    sent_weight: Vec<Weight>,
    stored_weight: Vec<Weight>,
    arrivals_weight: Vec<Vec<Weight>>, // per step, the arriving weights
}

fn run_instrumented(stream: &InputStream, buffer: u64, rate: u64) -> GreedyTrace {
    let mut server = Server::new(buffer, rate, GreedyByteValue::new());
    let horizon = (stream.horizon() + stream.total_bytes() / rate + 2) as usize;
    let mut trace = GreedyTrace {
        sent_weight: vec![0; horizon],
        stored_weight: vec![0; horizon],
        arrivals_weight: vec![Vec::new(); horizon],
    };
    let mut frames = stream.frames().iter().peekable();
    for t in 0..horizon {
        let arrivals: &[_] = match frames.peek() {
            Some(f) if f.time == t as u64 => &frames.next().unwrap().slices,
            _ => &[],
        };
        trace.arrivals_weight[t] = arrivals.iter().map(|s| s.weight).collect();
        let step = server.step(t as u64, arrivals);
        trace.sent_weight[t] = step
            .sent
            .iter()
            .filter(|c| c.completed)
            .map(|c| c.slice.weight)
            .sum();
        trace.stored_weight[t] = server.buffer().iter().map(|e| e.slice.weight).sum();
    }
    trace
}

/// `w(V(F))` for unit slices: the sum of the `cap` largest weights.
fn v_weight(weights: &[Weight], cap: u64) -> Weight {
    let mut w = weights.to_vec();
    w.sort_unstable_by(|a, b| b.cmp(a));
    w.into_iter().take(cap as usize).sum()
}

fn random_stream(rng: &mut SplitMix64, steps: usize, max_per_step: u64) -> InputStream {
    InputStream::from_frames((0..steps).map(|_| {
        let n = rng.range_u64(0, max_per_step) as usize;
        (0..n)
            .map(|_| SliceSpec::new(1, rng.range_u64(1, 50), FrameKind::Generic))
            .collect::<Vec<_>>()
    }))
}

#[test]
fn lemma_4_3_sent_or_stored_dominates_v() {
    // For every interval I starting at 0 mod D (any interval works; the
    // lemma is stated for arbitrary [t, t + len - 1]).
    let mut rng = SplitMix64::new(430);
    for trial in 0..40 {
        let b = rng.range_u64(1, 8);
        let r = rng.range_u64(1, 3);
        let stream = random_stream(&mut rng, 20, 6);
        let trace = run_instrumented(&stream, b, r);
        let horizon = trace.sent_weight.len();
        for start in (0..horizon).step_by(3) {
            for len in [1usize, 2, 5, 9] {
                let end = (start + len).min(horizon);
                let sent: Weight = trace.sent_weight[start..end].iter().sum();
                let arrived: Vec<Weight> = trace.arrivals_weight[start..end]
                    .iter()
                    .flatten()
                    .copied()
                    .collect();
                // Unit slices: Lmax = 1, so V selects up to B slices.
                let v = v_weight(&arrived, b);
                let stored_at_end = if end == 0 {
                    0
                } else {
                    trace.stored_weight[end - 1]
                };
                assert!(
                    sent + stored_at_end >= v,
                    "trial {trial} [{start},{end}): sent {sent} + stored \
                     {stored_at_end} < V {v} (B={b}, R={r})"
                );
            }
        }
    }
}

#[test]
fn lemma_4_4_stored_weight_is_sent_within_d_steps() {
    let mut rng = SplitMix64::new(440);
    for trial in 0..40 {
        let r = rng.range_u64(1, 3);
        let d = rng.range_u64(1, 6);
        let b = r * d; // the B = R*D setting of the proof
        let stream = random_stream(&mut rng, 18, 6);
        let trace = run_instrumented(&stream, b, r);
        let horizon = trace.sent_weight.len();
        for t in 0..horizon {
            let window_end = (t + 1 + d as usize).min(horizon);
            let sent_next_d: Weight = trace.sent_weight[t + 1..window_end].iter().sum();
            // The paper indexes sends from t; our stored_weight[t] is
            // post-send, so the following D steps must cover it.
            if window_end == t + 1 + d as usize {
                assert!(
                    trace.stored_weight[t] <= sent_next_d,
                    "trial {trial} t={t}: stored {} > sent-in-D {sent_next_d} \
                     (B={b}, R={r}, D={d})",
                    trace.stored_weight[t]
                );
            }
        }
    }
}

#[test]
fn lemma_4_5_interval_composition() {
    let mut rng = SplitMix64::new(450);
    for trial in 0..40 {
        let r = rng.range_u64(1, 3);
        let d = rng.range_u64(1, 5);
        let b = r * d;
        let stream = random_stream(&mut rng, 16, 5);
        let trace = run_instrumented(&stream, b, r);
        let horizon = trace.sent_weight.len();
        let d = d as usize;
        let mut start = 0;
        while start + d <= horizon {
            let end = start + d;
            let sent: Weight = trace.sent_weight[start..end].iter().sum();
            let arrived: Vec<Weight> = trace.arrivals_weight[start..end]
                .iter()
                .flatten()
                .copied()
                .collect();
            let v = v_weight(&arrived, b);
            let stored_start = if start == 0 {
                0
            } else {
                trace.stored_weight[start - 1]
            };
            let stored_end = trace.stored_weight[end - 1];
            // Exactly the paper's form: 2 w(S(I)) + w(Bs(end)) − w(Bs(start))
            // ≥ w(V(A(I))), rearranged to stay in unsigned arithmetic.
            assert!(
                2 * sent + stored_end >= v + stored_start,
                "trial {trial} [{start},{end}): 2*{sent} + {stored_end} < \
                 V {v} + stored_start {stored_start} (B={b}, R={r})"
            );
            start = end;
        }
    }
}

#[test]
fn lemma_4_6_no_schedule_beats_the_window_bound() {
    // The exact optimum of the slices arriving in an interval, given
    // buffer B and the interval's send capacity, is at most
    // (B + len*R) / B * w(V(...)) for unit slices (Lmax = 1 makes the
    // denominator exactly B).
    let mut rng = SplitMix64::new(460);
    for trial in 0..40 {
        let b = rng.range_u64(1, 6);
        let r = rng.range_u64(1, 3);
        let len = rng.range_u64(1, 6);
        let stream = random_stream(&mut rng, len as usize, 6);
        let arrived: Vec<Weight> = stream.slices().map(|s| s.weight).collect();
        if arrived.is_empty() {
            continue;
        }
        let v = v_weight(&arrived, b);
        // Give the adversary schedule the whole interval plus an
        // unlimited tail to drain: that's what "can ever be sent" means.
        let opt = optimal_unit_benefit(&stream, b, r).expect("unit slices");
        // opt <= (B + len R)/B * v, in exact integer arithmetic.
        assert!(
            opt as u128 * b as u128 <= (b + len * r) as u128 * v as u128,
            "trial {trial}: opt {opt} > (B + lR)/B * V = ({b}+{len}*{r})/{b} * {v}"
        );
    }
}

#[test]
fn theorem_4_1_assembly_from_the_lemmas() {
    // The proof's final assembly: sum w(V(A(I_j))) over the D-partition
    // is at least B/(B + DR) = 1/2 of the optimal benefit, and at most
    // twice the greedy benefit — so opt <= 4 * greedy. Verified
    // numerically on random instances (with exact optima).
    let mut rng = SplitMix64::new(410);
    for trial in 0..30 {
        let r = rng.range_u64(1, 3);
        let d = rng.range_u64(1, 4);
        let b = r * d;
        let stream = random_stream(&mut rng, 14, 5);
        let trace = run_instrumented(&stream, b, r);
        let greedy_total: Weight = trace.sent_weight.iter().sum();
        let horizon = trace.sent_weight.len();
        let mut v_sum: Weight = 0;
        let mut start = 0;
        while start < horizon {
            let end = (start + d as usize).min(horizon);
            let arrived: Vec<Weight> = trace.arrivals_weight[start..end]
                .iter()
                .flatten()
                .copied()
                .collect();
            v_sum += v_weight(&arrived, b);
            start = end;
        }
        // Lemma 4.5 summed: v_sum <= 2 * greedy.
        assert!(
            v_sum <= 2 * greedy_total,
            "trial {trial}: V-sum {v_sum} > 2x greedy {greedy_total}"
        );
        // Lemma 4.6 summed: opt <= 2 * v_sum (B + DR = 2B for unit).
        let opt = optimal_unit_benefit(&stream, b, r).expect("unit");
        assert!(
            opt <= 2 * v_sum.max(1),
            "trial {trial}: opt {opt} > 2x V-sum {v_sum}"
        );
        // And the theorem itself.
        assert!(opt <= 4 * greedy_total.max(1), "trial {trial}");
    }
}
