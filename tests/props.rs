//! Randomized property tests over the whole stack: random streams,
//! random parameters, and the model invariants that must hold for every
//! one of them.
//!
//! Cases are generated with the workspace's own deterministic
//! [`SplitMix64`] PRNG (no external test-framework dependency, so the
//! suite runs offline). Every assertion message carries the case index;
//! reproduce a failure by re-running the test — the sequence is fixed.

use realtime_smoothing::{
    optimal_unit_benefit, simulate, validate, GreedyByteValue, InputStream, SimConfig, SliceSpec,
    SmoothingParams, TailDrop,
};
use rts_sim::run_server_only;
use rts_stream::rng::SplitMix64;
use rts_stream::textio;
use rts_stream::FrameKind;

const CASES: u64 = 64;

fn kind(rng: &mut SplitMix64) -> FrameKind {
    match rng.range_u64(0, 3) {
        0 => FrameKind::I,
        1 => FrameKind::P,
        2 => FrameKind::B,
        _ => FrameKind::Generic,
    }
}

/// A random stream as per-frame lists of (size, weight, kind).
fn random_stream(
    rng: &mut SplitMix64,
    max_steps: u64,
    max_per_step: u64,
    max_size: u64,
) -> InputStream {
    let steps = rng.range_u64(1, max_steps);
    let frames: Vec<Vec<SliceSpec>> = (0..steps)
        .map(|_| {
            let n = rng.range_u64(0, max_per_step);
            (0..n)
                .map(|_| {
                    SliceSpec::new(
                        rng.range_u64(1, max_size),
                        rng.range_u64(0, 49),
                        kind(rng),
                    )
                })
                .collect()
        })
        .collect();
    InputStream::from_frames(frames)
}

/// Unit-size slices only.
fn random_unit_stream(rng: &mut SplitMix64, max_steps: u64, max_per_step: u64) -> InputStream {
    random_stream(rng, max_steps, max_per_step, 1)
}

/// Conservation: every offered byte is either played or lost, for
/// arbitrary (even unbalanced) configurations.
#[test]
fn conservation_holds_for_any_configuration() {
    let mut rng = SplitMix64::new(0x00D0_0001);
    for case in 0..CASES {
        let stream = random_stream(&mut rng, 12, 4, 3);
        let params = SmoothingParams {
            buffer: rng.range_u64(0, 11),
            rate: rng.range_u64(1, 4),
            delay: rng.range_u64(0, 5),
            link_delay: rng.range_u64(0, 3),
        };
        let report = simulate(&stream, SimConfig::new(params), TailDrop::new());
        let m = &report.metrics;
        assert_eq!(m.played_bytes + m.lost_bytes(), m.offered_bytes, "case {case}");
        assert_eq!(
            m.played_slices + m.server_dropped_slices + m.client_dropped_slices,
            stream.slice_count() as u64,
            "case {case}"
        );
        // The structural validator accepts every schedule the engine
        // produces (balanced-only clauses fire only when balanced).
        assert!(
            validate(&report).is_ok(),
            "case {case}: validator rejected: {:?}",
            validate(&report).err()
        );
    }
}

/// Balanced configurations never lose at the client, and the pipeline
/// equals the single-buffer model.
#[test]
fn balanced_equals_server_only() {
    let mut rng = SplitMix64::new(0x00D0_0002);
    for case in 0..CASES {
        let stream = random_stream(&mut rng, 12, 4, 2);
        let params = SmoothingParams::balanced_from_rate_delay(
            rng.range_u64(1, 4),
            rng.range_u64(1, 5),
            rng.range_u64(0, 2),
        );
        if params.buffer < 2 {
            continue; // room for the largest slice
        }
        let report = simulate(&stream, SimConfig::new(params), GreedyByteValue::new());
        let single = run_server_only(&stream, params.buffer, params.rate, GreedyByteValue::new());
        assert_eq!(report.metrics.benefit, single.benefit, "case {case}");
        assert_eq!(report.metrics.client_dropped_slices, 0, "case {case}");
    }
}

/// The server buffer never exceeds its capacity and the link is never
/// over-driven, for any policy and configuration.
#[test]
fn resource_requirements_respected() {
    let mut rng = SplitMix64::new(0x00D0_0003);
    for case in 0..CASES {
        let stream = random_stream(&mut rng, 10, 5, 3);
        let buffer = rng.range_u64(3, 14);
        let rate = rng.range_u64(1, 5);
        let run = run_server_only(&stream, buffer, rate, GreedyByteValue::new());
        assert!(run.throughput <= stream.total_bytes(), "case {case}");
        let params = SmoothingParams::balanced_from_buffer_rate(buffer, rate, 1);
        let report = simulate(&stream, SimConfig::new(params), GreedyByteValue::new());
        assert!(report.metrics.server_occupancy_max <= buffer, "case {case}");
        assert!(report.metrics.link_rate_max <= rate, "case {case}");
    }
}

/// The offline optimum dominates every online policy (it had better: it
/// is an upper bound over all schedules).
#[test]
fn optimal_dominates_online() {
    let mut rng = SplitMix64::new(0x00D0_0004);
    for case in 0..CASES {
        let stream = random_unit_stream(&mut rng, 10, 5);
        let buffer = rng.range_u64(0, 7);
        let rate = rng.range_u64(1, 3);
        let opt = optimal_unit_benefit(&stream, buffer, rate).unwrap();
        let greedy = run_server_only(&stream, buffer, rate, GreedyByteValue::new()).benefit;
        let tail = run_server_only(&stream, buffer, rate, TailDrop::new()).benefit;
        assert!(opt >= greedy, "case {case}: opt {opt} < greedy {greedy}");
        assert!(opt >= tail, "case {case}: opt {opt} < tail {tail}");
        // And within the Theorem 4.1 factor of greedy.
        assert!(opt <= 4 * greedy.max(1) || opt == 0, "case {case}");
    }
}

/// Text trace round-trip is lossless for arbitrary streams.
#[test]
fn textio_roundtrip() {
    let mut rng = SplitMix64::new(0x00D0_0005);
    for case in 0..CASES {
        let stream = random_stream(&mut rng, 8, 4, 5);
        let text = textio::write_stream(&stream);
        let back = textio::parse_stream(&text).unwrap();
        assert_eq!(stream, back, "case {case}");
    }
}

/// Sojourn times are constant (the real-time property) for every played
/// slice under any balanced configuration.
#[test]
fn constant_sojourn_for_played_slices() {
    let mut rng = SplitMix64::new(0x00D0_0006);
    for case in 0..CASES {
        let stream = random_stream(&mut rng, 10, 4, 2);
        let link_delay = rng.range_u64(0, 2);
        let params = SmoothingParams::balanced_from_rate_delay(
            rng.range_u64(1, 3),
            rng.range_u64(1, 4),
            link_delay,
        );
        let report = simulate(&stream, SimConfig::new(params), TailDrop::new());
        for (rec, playout) in report.record.played() {
            assert_eq!(
                playout - rec.slice.arrival,
                link_delay + params.delay,
                "case {case}"
            );
        }
    }
}

/// Unit-slice throughput is policy-independent (the Theorem 3.5
/// under-specification), on arbitrary streams and configurations.
#[test]
fn unit_throughput_policy_independent() {
    let mut rng = SplitMix64::new(0x00D0_0007);
    for case in 0..CASES {
        let stream = random_unit_stream(&mut rng, 12, 6);
        let buffer = rng.range_u64(0, 9);
        let rate = rng.range_u64(1, 3);
        let a = run_server_only(&stream, buffer, rate, TailDrop::new()).throughput;
        let b = run_server_only(&stream, buffer, rate, GreedyByteValue::new()).throughput;
        assert_eq!(a, b, "case {case}");
    }
}

/// Differential test: the lazy-heap greedy and the O(n) rescan greedy
/// produce byte-identical schedules on arbitrary weighted variable-size
/// streams.
#[test]
fn greedy_heap_equals_greedy_rescan() {
    let mut rng = SplitMix64::new(0x00D0_0008);
    for case in 0..CASES {
        let stream = random_stream(&mut rng, 14, 5, 4);
        let buffer = rng.range_u64(0, 13);
        let rate = rng.range_u64(1, 4);
        let heap = run_server_only(&stream, buffer, rate, GreedyByteValue::new());
        let scan = run_server_only(&stream, buffer, rate, rts_core::GreedyRescan::new());
        assert_eq!(heap, scan, "case {case}");
    }
}

/// Replaying the offline plan through the server achieves the optimum
/// for arbitrary weighted unit-slice streams.
#[test]
fn planned_drops_always_achieve_the_optimum() {
    let mut rng = SplitMix64::new(0x00D0_0009);
    for case in 0..CASES {
        let stream = random_unit_stream(&mut rng, 12, 5);
        let buffer = rng.range_u64(0, 7);
        let rate = rng.range_u64(1, 3);
        let (opt, rejected) = rts_offline::optimal_unit_plan(&stream, buffer, rate).unwrap();
        let replay = run_server_only(&stream, buffer, rate, rts_core::PlannedDrops::new(rejected));
        assert_eq!(replay.benefit, opt, "case {case}");
    }
}

/// The timer-based client (Section 3.1.2's deployment mechanism, which
/// never learns the link delay) plays exactly what the closed-form
/// client plays, at exactly the same times, on arbitrary schedules
/// produced by the generic server.
#[test]
fn timer_client_equals_closed_form_client() {
    use rts_core::{Client, Server};
    use rts_sim::{Link, LinkModel};

    let mut rng = SplitMix64::new(0x00D0_000A);
    for case in 0..CASES {
        let stream = random_stream(&mut rng, 10, 4, 2);
        let buffer = rng.range_u64(1, 9);
        let rate = rng.range_u64(1, 3);
        let delay = rng.range_u64(0, 4);
        let link_delay = rng.range_u64(0, 3);

        let mut server = Server::new(buffer, rate, TailDrop::new());
        let mut link = Link::new(link_delay);
        let mut known = Client::new(buffer.max(4), delay, link_delay);
        let mut timer = Client::with_timer(buffer.max(4), delay);

        let horizon = stream.horizon() + link_delay + delay + stream.total_bytes() + 4;
        let mut frames = stream.frames().iter().peekable();
        for t in 0..horizon {
            let arrivals: &[_] = match frames.peek() {
                Some(f) if f.time == t => &frames.next().unwrap().slices,
                _ => &[],
            };
            let sstep = server.step(t, arrivals);
            link.submit(&sstep.sent);
            let delivered = link.deliver(t);
            let a = known.step(t, &delivered);
            let b = timer.step(t, &delivered);
            assert_eq!(a, b, "case {case}: diverged at t={t}");
        }
    }
}
