//! Property-based tests (proptest) over the whole stack: random
//! streams, random parameters, and the model invariants that must hold
//! for every one of them.

use proptest::collection::vec;
use proptest::prelude::*;

use realtime_smoothing::{
    optimal_unit_benefit, simulate, validate, GreedyByteValue, InputStream, SimConfig, SliceSpec,
    SmoothingParams, TailDrop,
};
use rts_sim::run_server_only;
use rts_stream::textio;
use rts_stream::FrameKind;

/// Strategy: a random stream as per-frame lists of (size, weight, kind).
fn stream_strategy(
    max_steps: usize,
    max_per_step: usize,
    max_size: u64,
) -> impl Strategy<Value = InputStream> {
    let kind = prop_oneof![
        Just(FrameKind::I),
        Just(FrameKind::P),
        Just(FrameKind::B),
        Just(FrameKind::Generic),
    ];
    let slice = (1..=max_size, 0u64..50, kind).prop_map(|(s, w, k)| SliceSpec::new(s, w, k));
    vec(vec(slice, 0..=max_per_step), 1..=max_steps).prop_map(InputStream::from_frames)
}

/// Strategy: unit-size slices only.
fn unit_stream_strategy(
    max_steps: usize,
    max_per_step: usize,
) -> impl Strategy<Value = InputStream> {
    stream_strategy(max_steps, max_per_step, 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every offered byte is either played or lost, for
    /// arbitrary (even unbalanced) configurations.
    #[test]
    fn conservation_holds_for_any_configuration(
        stream in stream_strategy(12, 4, 3),
        buffer in 0u64..12,
        rate in 1u64..5,
        delay in 0u64..6,
        link_delay in 0u64..4,
    ) {
        let params = SmoothingParams { buffer, rate, delay, link_delay };
        let report = simulate(&stream, SimConfig::new(params), TailDrop::new());
        let m = &report.metrics;
        prop_assert_eq!(m.played_bytes + m.lost_bytes(), m.offered_bytes);
        prop_assert_eq!(
            m.played_slices + m.server_dropped_slices + m.client_dropped_slices,
            stream.slice_count() as u64
        );
        // The structural validator accepts every schedule the engine
        // produces (balanced-only clauses fire only when balanced).
        prop_assert!(validate(&report).is_ok(),
            "validator rejected: {:?}", validate(&report).err());
    }

    /// Balanced configurations never lose at the client, and the
    /// pipeline equals the single-buffer model.
    #[test]
    fn balanced_equals_server_only(
        stream in stream_strategy(12, 4, 2),
        rate in 1u64..5,
        delay in 1u64..6,
        link_delay in 0u64..3,
    ) {
        let params = SmoothingParams::balanced_from_rate_delay(rate, delay, link_delay);
        prop_assume!(params.buffer >= 2); // room for the largest slice
        let report = simulate(&stream, SimConfig::new(params), GreedyByteValue::new());
        let single = run_server_only(&stream, params.buffer, rate, GreedyByteValue::new());
        prop_assert_eq!(report.metrics.benefit, single.benefit);
        prop_assert_eq!(report.metrics.client_dropped_slices, 0);
    }

    /// The server buffer never exceeds its capacity and the link is
    /// never over-driven, for any policy and configuration.
    #[test]
    fn resource_requirements_respected(
        stream in stream_strategy(10, 5, 3),
        buffer in 3u64..15,
        rate in 1u64..6,
    ) {
        let run = run_server_only(&stream, buffer, rate, GreedyByteValue::new());
        prop_assert!(run.throughput <= stream.total_bytes());
        let params = SmoothingParams::balanced_from_buffer_rate(buffer, rate, 1);
        let report = simulate(&stream, SimConfig::new(params), GreedyByteValue::new());
        prop_assert!(report.metrics.server_occupancy_max <= buffer);
        prop_assert!(report.metrics.link_rate_max <= rate);
    }

    /// The offline optimum dominates every online policy (it had better:
    /// it is an upper bound over all schedules).
    #[test]
    fn optimal_dominates_online(
        stream in unit_stream_strategy(10, 5),
        buffer in 0u64..8,
        rate in 1u64..4,
    ) {
        let opt = optimal_unit_benefit(&stream, buffer, rate).unwrap();
        let greedy = run_server_only(&stream, buffer, rate, GreedyByteValue::new()).benefit;
        let tail = run_server_only(&stream, buffer, rate, TailDrop::new()).benefit;
        prop_assert!(opt >= greedy, "opt {} < greedy {}", opt, greedy);
        prop_assert!(opt >= tail, "opt {} < tail {}", opt, tail);
        // And within the Theorem 4.1 factor of greedy.
        prop_assert!(opt <= 4 * greedy.max(1) || opt == 0);
    }

    /// Text trace round-trip is lossless for arbitrary streams.
    #[test]
    fn textio_roundtrip(stream in stream_strategy(8, 4, 5)) {
        let text = textio::write_stream(&stream);
        let back = textio::parse_stream(&text).unwrap();
        prop_assert_eq!(stream, back);
    }

    /// Sojourn times are constant (the real-time property) for every
    /// played slice under any balanced configuration.
    #[test]
    fn constant_sojourn_for_played_slices(
        stream in stream_strategy(10, 4, 2),
        rate in 1u64..4,
        delay in 1u64..5,
        link_delay in 0u64..3,
    ) {
        let params = SmoothingParams::balanced_from_rate_delay(rate, delay, link_delay);
        let report = simulate(&stream, SimConfig::new(params), TailDrop::new());
        for (rec, playout) in report.record.played() {
            prop_assert_eq!(playout - rec.slice.arrival, link_delay + delay);
        }
    }

    /// Unit-slice throughput is policy-independent (the Theorem 3.5
    /// under-specification), on arbitrary streams and configurations.
    #[test]
    fn unit_throughput_policy_independent(
        stream in unit_stream_strategy(12, 6),
        buffer in 0u64..10,
        rate in 1u64..4,
    ) {
        let a = run_server_only(&stream, buffer, rate, TailDrop::new()).throughput;
        let b = run_server_only(&stream, buffer, rate, GreedyByteValue::new()).throughput;
        prop_assert_eq!(a, b);
    }

    /// Differential test: the lazy-heap greedy and the O(n) rescan
    /// greedy produce byte-identical schedules on arbitrary weighted
    /// variable-size streams.
    #[test]
    fn greedy_heap_equals_greedy_rescan(
        stream in stream_strategy(14, 5, 4),
        buffer in 0u64..14,
        rate in 1u64..5,
    ) {
        let heap = run_server_only(&stream, buffer, rate, GreedyByteValue::new());
        let scan = run_server_only(&stream, buffer, rate, rts_core::GreedyRescan::new());
        prop_assert_eq!(heap, scan);
    }

    /// Replaying the offline plan through the server achieves the
    /// optimum for arbitrary weighted unit-slice streams.
    #[test]
    fn planned_drops_always_achieve_the_optimum(
        stream in unit_stream_strategy(12, 5),
        buffer in 0u64..8,
        rate in 1u64..4,
    ) {
        let (opt, rejected) =
            rts_offline::optimal_unit_plan(&stream, buffer, rate).unwrap();
        let replay =
            run_server_only(&stream, buffer, rate, rts_core::PlannedDrops::new(rejected));
        prop_assert_eq!(replay.benefit, opt);
    }

    /// The timer-based client (Section 3.1.2's deployment mechanism,
    /// which never learns the link delay) plays exactly what the
    /// closed-form client plays, at exactly the same times, on
    /// arbitrary schedules produced by the generic server.
    #[test]
    fn timer_client_equals_closed_form_client(
        stream in stream_strategy(10, 4, 2),
        buffer in 1u64..10,
        rate in 1u64..4,
        delay in 0u64..5,
        link_delay in 0u64..4,
    ) {
        use rts_core::{Client, Server};
        use rts_sim::{Link, LinkModel};

        let mut server = Server::new(buffer, rate, TailDrop::new());
        let mut link = Link::new(link_delay);
        let mut known = Client::new(buffer.max(4), delay, link_delay);
        let mut timer = Client::with_timer(buffer.max(4), delay);

        let horizon = stream.horizon() + link_delay + delay + stream.total_bytes() + 4;
        let mut frames = stream.frames().iter().peekable();
        for t in 0..horizon {
            let arrivals: &[_] = match frames.peek() {
                Some(f) if f.time == t => &frames.next().unwrap().slices,
                _ => &[],
            };
            let sstep = server.step(t, arrivals);
            link.submit(&sstep.sent);
            let delivered = link.deliver(t);
            let a = known.step(t, &delivered);
            let b = timer.step(t, &delivered);
            prop_assert_eq!(a, b, "diverged at t={}", t);
        }
    }
}
