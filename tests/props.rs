//! Randomized property tests over the whole stack, driven by the
//! rts-check catalog (`crates/check`).
//!
//! Each test runs one named check from the catalog — the same checks
//! `smoothctl check` and the CI fuzz-smoke job run. On a failure the
//! harness shrinks the counterexample and the assertion message carries
//! a minimal reproducer plus a `CHECK_SEED`; replay it with
//!
//! ```text
//! CHECK_SEED=0x... smoothctl check --filter <name>
//! ```
//!
//! Cases are generated with the workspace's own deterministic SplitMix64
//! PRNG (no external test-framework dependency, so the suite runs
//! offline and every run sees the same cases).

use rts_check::{all_checks, run_checks, CheckConfig};

const CASES: u64 = 64;
const SEED: u64 = 0x5eed;

/// Runs one catalog check by exact name and asserts it passes, printing
/// the shrunk reproducer report on failure.
fn check(name: &str) {
    let cfg = CheckConfig::new(CASES, SEED);
    let selected: Vec<_> = all_checks().into_iter().filter(|c| c.name == name).collect();
    assert_eq!(selected.len(), 1, "no catalog check named {name:?}");
    match (selected[0].run)(&cfg) {
        Ok(stats) => assert!(
            stats.passed > 0,
            "{name}: every case was discarded ({} discards)",
            stats.discarded
        ),
        Err(failure) => panic!(
            "{name} failed:\n{}",
            failure
                .to_string()
                .replace("--filter <name>", &format!("--filter {name}"))
        ),
    }
}

// ------------------------------------------------------------------
// Invariants: the paper's bounds as predicates over generated runs.
// ------------------------------------------------------------------

#[test]
fn conservation_holds_for_any_configuration() {
    check("conservation");
}

#[test]
fn link_is_driven_in_fifo_order() {
    check("fifo-order");
}

#[test]
fn resource_requirements_respected() {
    check("resource-bounds");
}

#[test]
fn balanced_configurations_never_drop_at_the_client() {
    check("balanced-no-client-loss");
}

#[test]
fn constant_sojourn_for_played_slices() {
    check("sojourn-constant");
}

#[test]
fn unit_throughput_policy_independent() {
    check("thm35-unit-loss");
}

#[test]
fn throughput_floor_of_theorem_39_holds() {
    check("thm39-throughput-floor");
}

#[test]
fn greedy_competitive_bound_of_theorem_41_holds() {
    check("thm41-greedy-competitive");
}

#[test]
fn optimal_dominates_online() {
    check("opt-dominates-online");
}

#[test]
fn planned_drops_always_achieve_the_optimum() {
    check("planned-drops-optimal");
}

#[test]
fn resync_skew_stays_within_policy_bounds() {
    check("resync-skew-bounded");
}

// ------------------------------------------------------------------
// Differential oracles: paired implementations must agree exactly.
// ------------------------------------------------------------------

#[test]
fn ring_and_map_backings_agree() {
    check("ring-vs-map");
}

#[test]
fn probes_never_change_the_schedule() {
    check("probed-vs-unprobed");
}

#[test]
fn empty_fault_plan_equals_plain_engine() {
    check("faults-empty-vs-plain");
}

#[test]
fn single_session_mux_equals_simulator() {
    check("mux-single-vs-sim");
}

#[test]
fn client_step_equals_step_into() {
    check("client-step-vs-into");
}

#[test]
fn timer_client_equals_closed_form_client() {
    check("client-timer-vs-known");
}

#[test]
fn greedy_heap_equals_greedy_rescan() {
    check("greedy-heap-vs-rescan");
}

#[test]
fn unit_flow_optimum_equals_brute_force() {
    check("flow-vs-brute");
}

#[test]
fn frame_dp_optimum_equals_brute_force() {
    check("framedp-vs-brute");
}

#[test]
fn mixed_optimum_equals_brute_force() {
    check("mixed-vs-brute");
}

#[test]
fn balanced_equals_server_only() {
    check("sim-vs-server-only");
}

#[test]
fn chain_solver_equals_flow_reference() {
    check("unit-chain-vs-flow");
}

#[test]
fn optimal_plans_are_canonical() {
    check("unit-plan-canonical");
}

#[test]
fn warm_sweeps_equal_cold_solves() {
    check("sweep-warm-vs-cold");
}

#[test]
fn windowed_estimate_respects_its_gap_bound() {
    check("windowed-gap");
}

#[test]
fn textio_roundtrip() {
    check("textio-roundtrip");
}

// ------------------------------------------------------------------
// The smoothd serving layer: ingest codec and churn accounting.
// ------------------------------------------------------------------

#[test]
fn smoothd_frame_codec_roundtrips() {
    check("smoothd-frame-roundtrip");
}

#[test]
fn smoothd_frame_decoder_is_total_on_fuzzed_bytes() {
    check("smoothd-frame-fuzz");
}

#[test]
fn smoothd_stats_frames_roundtrip() {
    check("smoothd-stats-roundtrip");
}

#[test]
fn smoothd_stats_decoder_is_total_on_fuzzed_bytes() {
    check("smoothd-stats-fuzz");
}

#[test]
fn smoothd_churn_conserves_bytes_and_capacity() {
    check("smoothd-churn-conservation");
}

#[test]
fn smoothd_migration_is_invisible_to_the_ledger() {
    check("smoothd-migrate-conservation");
}

#[test]
fn smoothd_snapshots_restore_state_and_ledgers_exactly() {
    check("smoothd-snapshot-roundtrip");
}

#[test]
fn smoothd_snapshot_reader_is_total_on_fuzzed_bytes() {
    check("smoothd-snapshot-fuzz");
}

// ------------------------------------------------------------------
// The telemetry plane: histogram merge algebra and atomic snapshots.
// ------------------------------------------------------------------

#[test]
fn histogram_merge_is_order_free_and_snapshots_agree() {
    check("hist-merge-oracle");
}

// ------------------------------------------------------------------
// The catalog runner itself.
// ------------------------------------------------------------------

#[test]
fn every_catalog_check_has_a_test_above() {
    // Keep this file in lock-step with the catalog: adding a check
    // without a tier-1 test here is a wiring bug.
    let here = include_str!("props.rs");
    for check in all_checks() {
        assert!(
            here.contains(&format!("check(\"{}\")", check.name)),
            "catalog check {:?} has no test in tests/props.rs",
            check.name
        );
    }
}

#[test]
fn full_catalog_report_is_deterministic() {
    let cfg = CheckConfig::new(8, 7);
    let a = run_checks(&cfg, None);
    let b = run_checks(&cfg, None);
    assert_eq!(a, b, "catalog run is not a pure function of (cases, seed)");
    assert!(a.ok(), "{}", a.text);
}
