//! The three offline optimizers agree wherever their domains overlap,
//! and each agrees with the brute-force oracle on its own domain.

use realtime_smoothing::{
    optimal_brute_force, optimal_frame_benefit, optimal_unit_benefit, InputStream, SliceSpec,
};
use rts_offline::feasible::{is_feasible_subset, satisfies_interval_bounds};
use rts_stream::rng::SplitMix64;
use rts_stream::{FrameKind, SliceId};

fn random_unit_weighted(rng: &mut SplitMix64, steps: usize) -> InputStream {
    InputStream::from_frames((0..steps).map(|_| {
        let n = rng.range_u64(0, 3) as usize;
        (0..n)
            .map(|_| SliceSpec::new(1, rng.range_u64(0, 30), FrameKind::Generic))
            .collect::<Vec<_>>()
    }))
}

fn random_whole_frame(rng: &mut SplitMix64, steps: usize, max_size: u64) -> InputStream {
    InputStream::from_frames((0..steps).map(|_| {
        if rng.chance(0.75) {
            vec![SliceSpec::new(
                rng.range_u64(1, max_size),
                rng.range_u64(1, 40),
                FrameKind::Generic,
            )]
        } else {
            vec![]
        }
    }))
}

#[test]
fn flow_matches_brute_force_on_random_unit_streams() {
    let mut rng = SplitMix64::new(100);
    for trial in 0..120 {
        let stream = random_unit_weighted(&mut rng, 6);
        if stream.slice_count() > 14 {
            continue;
        }
        let b = rng.range_u64(0, 5);
        let r = rng.range_u64(1, 3);
        let flow = optimal_unit_benefit(&stream, b, r).expect("unit slices");
        let brute = optimal_brute_force(&stream, b, r);
        assert_eq!(flow, brute, "trial {trial}: B={b}, R={r}");
    }
}

#[test]
fn dp_matches_brute_force_on_random_frame_streams() {
    let mut rng = SplitMix64::new(101);
    for trial in 0..120 {
        let stream = random_whole_frame(&mut rng, 8, 5);
        let b = rng.range_u64(0, 9);
        let r = rng.range_u64(1, 4);
        let dp = optimal_frame_benefit(&stream, b, r).expect("whole frames");
        let brute = optimal_brute_force(&stream, b, r);
        assert_eq!(dp, brute, "trial {trial}: B={b}, R={r}");
    }
}

#[test]
fn flow_and_dp_agree_on_unit_whole_frame_streams() {
    // Streams with at most one unit slice per frame sit in both domains.
    let mut rng = SplitMix64::new(102);
    for trial in 0..60 {
        let stream = random_whole_frame(&mut rng, 12, 1);
        let b = rng.range_u64(0, 4);
        let r = rng.range_u64(1, 2);
        let flow = optimal_unit_benefit(&stream, b, r).expect("unit");
        let dp = optimal_frame_benefit(&stream, b, r).expect("frames");
        assert_eq!(flow, dp, "trial {trial}: B={b}, R={r}");
    }
}

#[test]
fn dp_never_exceeds_flow_under_finer_slicing() {
    // Splitting frames into bytes can only help: the whole-frame optimum
    // is at most the per-byte optimum of the same trace.
    let mut rng = SplitMix64::new(103);
    for _ in 0..30 {
        let frames: Vec<(FrameKind, u64)> = (0..10)
            .map(|_| (FrameKind::Generic, rng.range_u64(1, 6)))
            .collect();
        let trace = rts_stream::slicing::FrameSizeTrace::new(frames);
        let w = rts_stream::weight::WeightAssignment::BySize;
        let by_frame = trace.materialize(rts_stream::slicing::Slicing::WholeFrame, w);
        let by_byte = trace.materialize(rts_stream::slicing::Slicing::PerByte, w);
        let b = rng.range_u64(0, 8);
        let r = rng.range_u64(1, 4);
        let frame_opt = optimal_frame_benefit(&by_frame, b, r).expect("frames");
        let byte_opt = optimal_unit_benefit(&by_byte, b, r).expect("unit");
        assert!(
            frame_opt <= byte_opt,
            "whole-frame optimum {frame_opt} exceeds per-byte optimum {byte_opt} \
             (B={b}, R={r})"
        );
    }
}

#[test]
fn feasibility_predicates_agree_on_brute_force_witnesses() {
    // For every subset the brute force inspects, the simulation and the
    // leaky-bucket interval characterization must agree.
    let mut rng = SplitMix64::new(104);
    for _ in 0..40 {
        let stream = random_whole_frame(&mut rng, 6, 4);
        let n = stream.slice_count();
        if n > 12 {
            continue;
        }
        let b = rng.range_u64(0, 6);
        let r = rng.range_u64(1, 3);
        let ids: Vec<SliceId> = stream.slices().map(|s| s.id).collect();
        for mask in 0u32..(1 << n) {
            let subset: std::collections::HashSet<SliceId> = ids
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &id)| id)
                .collect();
            assert_eq!(
                is_feasible_subset(&stream, &subset, b, r),
                satisfies_interval_bounds(&stream, &subset, b, r),
                "mask {mask:#b}, B={b}, R={r}"
            );
        }
    }
}

#[test]
fn optimal_benefit_is_monotone_in_buffer_and_rate() {
    let mut rng = SplitMix64::new(105);
    let stream = random_unit_weighted(&mut rng, 15);
    let mut prev = 0;
    for b in 0..10 {
        let v = optimal_unit_benefit(&stream, b, 2).expect("unit");
        assert!(v >= prev, "optimum decreased at B={b}");
        prev = v;
    }
    let mut prev = 0;
    for r in 1..8 {
        let v = optimal_unit_benefit(&stream, 3, r).expect("unit");
        assert!(v >= prev, "optimum decreased at R={r}");
        prev = v;
    }
}
