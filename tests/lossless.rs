//! The lossless closed forms against the actual machinery: the minimal
//! rate/delay computed analytically must be exactly the threshold at
//! which the simulated generic algorithm stops losing data.

use realtime_smoothing::{simulate, SimConfig, SmoothingParams, TailDrop};
use rts_offline::{min_lossless_delay, min_lossless_rate, peak_rate};
use rts_stream::gen::{MpegConfig, MpegSource};
use rts_stream::rng::SplitMix64;
use rts_stream::slicing::Slicing;
use rts_stream::weight::WeightAssignment;
use rts_stream::{InputStream, SliceSpec};

fn random_unit_stream(rng: &mut SplitMix64, steps: usize, max_per_step: u64) -> InputStream {
    InputStream::from_frames((0..steps).map(|_| {
        let n = rng.range_u64(0, max_per_step) as usize;
        vec![SliceSpec::unit(); n]
    }))
}

fn loss_at(stream: &InputStream, rate: u64, delay: u64) -> u64 {
    let params = SmoothingParams::balanced_from_rate_delay(rate, delay, 0);
    let report = simulate(stream, SimConfig::new(params), TailDrop::new());
    report.metrics.lost_bytes()
}

#[test]
fn min_rate_is_exactly_the_lossless_threshold() {
    let mut rng = SplitMix64::new(700);
    for trial in 0..25 {
        let stream = random_unit_stream(&mut rng, 30, 8);
        if stream.total_bytes() == 0 {
            continue;
        }
        for delay in [0u64, 1, 3, 7] {
            let r = min_lossless_rate(&stream, delay);
            assert_eq!(
                loss_at(&stream, r, delay),
                0,
                "trial {trial}: rate {r} at delay {delay} should be lossless"
            );
            if r > 1 {
                assert!(
                    loss_at(&stream, r - 1, delay) > 0,
                    "trial {trial}: rate {} at delay {delay} should lose data",
                    r - 1
                );
            }
        }
    }
}

#[test]
fn min_delay_is_exactly_the_lossless_threshold() {
    let mut rng = SplitMix64::new(701);
    for trial in 0..25 {
        let stream = random_unit_stream(&mut rng, 30, 8);
        if stream.total_bytes() == 0 {
            continue;
        }
        for rate in [1u64, 2, 4] {
            let d = min_lossless_delay(&stream, rate).expect("finite stream");
            assert_eq!(
                loss_at(&stream, rate, d),
                0,
                "trial {trial}: delay {d} at rate {rate} should be lossless"
            );
            if d > 0 {
                assert!(
                    loss_at(&stream, rate, d - 1) > 0,
                    "trial {trial}: delay {} at rate {rate} should lose data",
                    d - 1
                );
            }
        }
    }
}

#[test]
fn zero_delay_threshold_is_the_peak_rate() {
    let mut rng = SplitMix64::new(702);
    let stream = random_unit_stream(&mut rng, 40, 12);
    assert_eq!(min_lossless_rate(&stream, 0), peak_rate(&stream));
}

#[test]
fn mpeg_frontier_validates_against_simulation() {
    let trace = MpegSource::new(MpegConfig::cnn_like(), 77).frames(200);
    let stream = trace.materialize(Slicing::PerByte, WeightAssignment::Uniform(1));
    for delay in [0u64, 2, 8, 24] {
        let r = min_lossless_rate(&stream, delay);
        assert_eq!(loss_at(&stream, r, delay), 0, "delay {delay}, rate {r}");
        assert!(
            loss_at(&stream, r - 1, delay) > 0,
            "delay {delay}: rate {} unexpectedly lossless",
            r - 1
        );
    }
}

#[test]
fn smoothing_halves_the_peak_within_modest_delay() {
    // The paper's introductory claim, as an assertion: on MPEG-like
    // traffic a delay of a dozen frame-times cuts the required rate to
    // well under half the peak.
    let trace = MpegSource::new(MpegConfig::cnn_like(), 78).frames(600);
    let stream = trace.materialize(Slicing::PerByte, WeightAssignment::Uniform(1));
    let peak = peak_rate(&stream);
    let smoothed = min_lossless_rate(&stream, 12);
    assert!(
        (smoothed as f64) < 0.55 * peak as f64,
        "rate {smoothed} vs peak {peak}"
    );
}
