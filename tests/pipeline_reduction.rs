//! The single-buffer reduction: with balanced parameters (`B = R·D`,
//! `Bc = B`) the end-to-end pipeline delivers exactly what the server
//! alone delivers (Lemmas 3.3/3.4), and the schedule validator accepts
//! every balanced run. Unbalanced configurations exhibit exactly the
//! pathologies Section 3.3 predicts.

use realtime_smoothing::{
    simulate, validate, GreedyByteValue, InputStream, SimConfig, SliceSpec, SmoothingParams,
    TailDrop, TradeoffClass,
};
use rts_core::ClientDropReason;
use rts_sim::run_server_only;
use rts_stream::gen::{MpegConfig, MpegSource};
use rts_stream::rng::SplitMix64;
use rts_stream::slicing::Slicing;
use rts_stream::weight::WeightAssignment;
use rts_stream::FrameKind;

fn random_stream(rng: &mut SplitMix64, steps: usize, lmax: u64) -> InputStream {
    InputStream::from_frames((0..steps).map(|_| {
        let n = rng.range_u64(0, 4) as usize;
        (0..n)
            .map(|_| {
                SliceSpec::new(
                    rng.range_u64(1, lmax),
                    rng.range_u64(1, 20),
                    FrameKind::Generic,
                )
            })
            .collect::<Vec<_>>()
    }))
}

#[test]
fn balanced_pipeline_equals_server_only_benefit() {
    let mut rng = SplitMix64::new(77);
    for trial in 0..50 {
        let lmax = rng.range_u64(1, 4);
        let stream = random_stream(&mut rng, 30, lmax);
        let rate = rng.range_u64(1, 5);
        let delay = rng.range_u64(1, 6);
        let params = SmoothingParams::balanced_from_rate_delay(rate, delay, rng.range_u64(0, 3));
        if params.buffer < lmax {
            continue; // oversized slices would be dropped on sight anyway
        }
        let report = simulate(&stream, SimConfig::new(params), GreedyByteValue::new());
        let server = run_server_only(&stream, params.buffer, params.rate, GreedyByteValue::new());
        assert_eq!(
            report.metrics.benefit, server.benefit,
            "trial {trial}: pipeline and single-buffer benefits differ \
             (B={}, R={rate}, D={delay})",
            params.buffer
        );
        assert_eq!(
            report.metrics.played_bytes, server.throughput,
            "trial {trial}"
        );
        assert_eq!(report.metrics.client_dropped_slices, 0, "trial {trial}");
    }
}

#[test]
fn balanced_schedules_always_validate() {
    let mut rng = SplitMix64::new(78);
    for trial in 0..40 {
        let stream = random_stream(&mut rng, 25, 3);
        let params = SmoothingParams::balanced_from_rate_delay(
            rng.range_u64(1, 5),
            rng.range_u64(1, 5),
            rng.range_u64(0, 4),
        );
        let report = simulate(&stream, SimConfig::new(params), TailDrop::new());
        validate(&report).unwrap_or_else(|e| panic!("trial {trial}: {e:?}"));
    }
}

#[test]
fn mpeg_workload_balanced_validation_all_policies() {
    let trace = MpegSource::new(MpegConfig::cnn_like(), 1234).frames(200);
    for slicing in [Slicing::PerByte, Slicing::WholeFrame, Slicing::Chunks(16)] {
        let stream = trace.materialize(slicing, WeightAssignment::MPEG_12_8_1);
        let rate = stream.stats().rate_at(0.95);
        let params = SmoothingParams::balanced_from_rate_delay(rate, 6, 2);
        let greedy = simulate(&stream, SimConfig::new(params), GreedyByteValue::new());
        let tail = simulate(&stream, SimConfig::new(params), TailDrop::new());
        validate(&greedy).unwrap_or_else(|e| panic!("{slicing:?} greedy: {e:?}"));
        validate(&tail).unwrap_or_else(|e| panic!("{slicing:?} tail: {e:?}"));
        assert!(
            greedy.metrics.benefit >= tail.metrics.benefit,
            "{slicing:?}"
        );
    }
}

#[test]
fn section_3_3_delay_below_b_over_r_causes_underflow() {
    // B = 8, R = 1, D = 2 < B/R: bytes can be held up to 8 steps at the
    // server, so some must miss their deadline.
    let stream = InputStream::from_frames([vec![SliceSpec::unit(); 8]]);
    let params = SmoothingParams {
        buffer: 8,
        rate: 1,
        delay: 2,
        link_delay: 0,
    };
    assert_eq!(
        params.classify(),
        TradeoffClass::ExcessBuffer { reducible_to: 2 },
        "B = 8 exceeds R*D = 2: only 2 bytes of buffer are usable in time"
    );
    let report = simulate(&stream, SimConfig::new(params), TailDrop::new());
    let late = report
        .metrics
        .client_drop_reasons
        .get(&ClientDropReason::Late)
        .copied()
        .unwrap_or(0);
    // Slices sent at steps 3..7 arrive after their deadline (t = 2).
    assert_eq!(late, 5, "{:?}", report.metrics.client_drop_reasons);
    assert_eq!(report.metrics.played_bytes, 3);
}

#[test]
fn section_3_3_excess_buffer_turns_into_late_losses() {
    // B > R*D: the generic server holds data longer than the deadline
    // allows — the Section 3.3 advice is to shrink B to R*D.
    let stream = InputStream::from_frames([vec![SliceSpec::unit(); 12]]);
    let balanced = SmoothingParams {
        buffer: 4,
        rate: 1,
        delay: 4,
        link_delay: 0,
    };
    let oversized = SmoothingParams {
        buffer: 12,
        rate: 1,
        delay: 4,
        link_delay: 0,
    };
    let at_balance = simulate(&stream, SimConfig::new(balanced), TailDrop::new());
    let above = simulate(&stream, SimConfig::new(oversized), TailDrop::new());
    assert!(
        above.metrics.played_bytes <= at_balance.metrics.played_bytes,
        "using buffer beyond R*D should not help: {} vs {}",
        above.metrics.played_bytes,
        at_balance.metrics.played_bytes
    );
    assert!(above
        .metrics
        .client_drop_reasons
        .contains_key(&ClientDropReason::Late));
}

#[test]
fn small_client_buffer_overflows_exactly_when_below_rd() {
    let stream = InputStream::from_frames([vec![SliceSpec::unit(); 10], vec![], vec![]]);
    let params = SmoothingParams::balanced_from_rate_delay(2, 5, 0); // B = 10
                                                                     // Bc = B: no client drops.
    let ok = simulate(&stream, SimConfig::new(params), TailDrop::new());
    assert_eq!(ok.metrics.client_dropped_slices, 0);
    // Bc = 3 < R*D: overflow.
    let starved = simulate(
        &stream,
        SimConfig {
            client_capacity: Some(3),
            ..SimConfig::new(params)
        },
        TailDrop::new(),
    );
    assert!(starved
        .metrics
        .client_drop_reasons
        .contains_key(&ClientDropReason::Overflow));
    assert!(starved.metrics.played_bytes < ok.metrics.played_bytes);
}

#[test]
fn link_delay_shifts_playout_but_not_loss() {
    let mut rng = SplitMix64::new(79);
    let stream = random_stream(&mut rng, 20, 2);
    let base = SmoothingParams::balanced_from_rate_delay(2, 3, 0);
    let shifted = SmoothingParams::balanced_from_rate_delay(2, 3, 7);
    let a = simulate(&stream, SimConfig::new(base), TailDrop::new());
    let b = simulate(&stream, SimConfig::new(shifted), TailDrop::new());
    assert_eq!(a.metrics.benefit, b.metrics.benefit);
    assert_eq!(a.metrics.played_bytes, b.metrics.played_bytes);
    // Every played slice is delayed by exactly the extra link delay.
    for (ra, rb) in a.record.played().zip(b.record.played()) {
        assert_eq!(ra.0.slice.id, rb.0.slice.id);
        assert_eq!(ra.1 + 7, rb.1);
    }
}
