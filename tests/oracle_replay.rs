//! The offline optimum is a *schedule*, not just a number: replaying
//! its rejected set through the real server (early drops via
//! `PlannedDrops`) reproduces the optimal benefit exactly.
//!
//! This closes the loop between `rts-offline` (which reasons about
//! flows) and `rts-core` (which moves actual slices): if the flow
//! model mis-encoded the queue dynamics in either direction, these
//! tests would catch it.

use realtime_smoothing::{InputStream, SliceSpec};
use rts_core::{EarlyValueDrop, GreedyByteValue, PlannedDrops};
use rts_offline::{optimal_unit_benefit, optimal_unit_plan};
use rts_sim::run_server_only;
use rts_stream::gen::greedy_lower_bound_stream;
use rts_stream::rng::SplitMix64;
use rts_stream::FrameKind;

fn random_weighted(rng: &mut SplitMix64, steps: usize, max_per_step: u64) -> InputStream {
    InputStream::from_frames((0..steps).map(|_| {
        let n = rng.range_u64(0, max_per_step) as usize;
        (0..n)
            .map(|_| SliceSpec::new(1, rng.range_u64(0, 40), FrameKind::Generic))
            .collect::<Vec<_>>()
    }))
}

#[test]
fn planned_drops_reproduce_the_optimum_exactly() {
    let mut rng = SplitMix64::new(2020);
    for trial in 0..60 {
        let stream = random_weighted(&mut rng, 25, 6);
        let b = rng.range_u64(0, 8);
        let r = rng.range_u64(1, 4);
        let (opt, rejected) = optimal_unit_plan(&stream, b, r).expect("unit slices");
        let replay = run_server_only(&stream, b, r, PlannedDrops::new(rejected));
        assert_eq!(
            replay.benefit, opt,
            "trial {trial}: replay {} vs optimum {opt} (B={b}, R={r})",
            replay.benefit
        );
    }
}

#[test]
fn planned_drops_beat_greedy_on_the_adversarial_stream() {
    // On the Theorem 4.7 stream the oracle keeps almost twice Greedy's
    // weight — through the very same server machinery.
    let b = 100;
    let stream = greedy_lower_bound_stream(b, 1, 50);
    let (opt, rejected) = optimal_unit_plan(&stream, b, 1).expect("unit slices");
    let oracle = run_server_only(&stream, b, 1, PlannedDrops::new(rejected));
    let greedy = run_server_only(&stream, b, 1, GreedyByteValue::new());
    assert_eq!(oracle.benefit, opt);
    assert!(
        oracle.benefit as f64 / greedy.benefit as f64 > 1.9,
        "oracle {} vs greedy {}",
        oracle.benefit,
        greedy.benefit
    );
}

#[test]
fn plan_benefit_matches_benefit_function() {
    let mut rng = SplitMix64::new(2021);
    for _ in 0..30 {
        let stream = random_weighted(&mut rng, 15, 5);
        let b = rng.range_u64(0, 6);
        let r = rng.range_u64(1, 3);
        let (a, _) = optimal_unit_plan(&stream, b, r).unwrap();
        let v = optimal_unit_benefit(&stream, b, r).unwrap();
        assert_eq!(a, v);
    }
}

#[test]
fn frame_plan_reproduces_the_dp_optimum_exactly() {
    // The whole-frame counterpart: the DP's rejected set, replayed
    // through the real server via early drops, achieves the DP value.
    let mut rng = SplitMix64::new(2023);
    for trial in 0..60 {
        let stream = InputStream::from_frames((0..12).map(|_| {
            if rng.chance(0.75) {
                vec![SliceSpec::new(
                    rng.range_u64(1, 5),
                    rng.range_u64(1, 40),
                    FrameKind::Generic,
                )]
            } else {
                vec![]
            }
        }));
        let b = rng.range_u64(0, 9);
        let r = rng.range_u64(1, 4);
        let (opt, rejected) = rts_offline::optimal_frame_plan(&stream, b, r).expect("whole frames");
        assert_eq!(
            opt,
            rts_offline::optimal_frame_benefit(&stream, b, r).unwrap(),
            "trial {trial}: plan and benefit disagree"
        );
        let replay = run_server_only(&stream, b, r, PlannedDrops::new(rejected));
        assert_eq!(
            replay.benefit, opt,
            "trial {trial}: replay vs optimum (B={b}, R={r})"
        );
    }
}

#[test]
fn frame_plan_handles_sparse_streams() {
    // Gaps between frames drain the buffer; the backtracking must
    // account for the folded-in idle drain.
    let mut b = InputStream::builder();
    b.frame(0, [SliceSpec::new(4, 7, FrameKind::Generic)]);
    b.frame(6, [SliceSpec::new(4, 9, FrameKind::Generic)]);
    b.frame(7, [SliceSpec::new(4, 1, FrameKind::Generic)]);
    let stream = b.build();
    let (opt, rejected) = rts_offline::optimal_frame_plan(&stream, 3, 1).unwrap();
    let replay = run_server_only(&stream, 3, 1, PlannedDrops::new(rejected));
    assert_eq!(replay.benefit, opt);
    assert_eq!(opt, 16); // both 7 and 9 fit thanks to the gap; the 1 conflicts
}

#[test]
fn plan_rejects_zero_weight_slices() {
    let stream = InputStream::from_frames([vec![
        SliceSpec::new(1, 0, FrameKind::Generic),
        SliceSpec::new(1, 5, FrameKind::Generic),
    ]]);
    let (opt, rejected) = optimal_unit_plan(&stream, 5, 1).unwrap();
    assert_eq!(opt, 5);
    assert_eq!(rejected.len(), 1);
}

#[test]
fn early_value_drop_is_competitive_with_greedy() {
    // The proactive variant never collapses: on random workloads it
    // stays within a small factor of plain Greedy (and the Theorem 4.1
    // bound still applies to the underlying greedy overflow handling).
    let mut rng = SplitMix64::new(2022);
    for trial in 0..30 {
        let stream = random_weighted(&mut rng, 30, 6);
        let b = rng.range_u64(4, 12);
        let r = rng.range_u64(1, 3);
        let greedy = run_server_only(&stream, b, r, GreedyByteValue::new()).benefit;
        let proactive = run_server_only(&stream, b, r, EarlyValueDrop::new(b, 3, 4, 2)).benefit;
        // Early-dropping value-1 slices when 3/4 full costs at most the
        // dropped value-1 slices themselves.
        assert!(
            proactive * 2 >= greedy,
            "trial {trial}: proactive {proactive} collapsed vs greedy {greedy}"
        );
    }
}

#[test]
fn early_value_drop_fires_only_above_threshold() {
    // Below the occupancy threshold no early drops happen, so on a
    // stream that never fills the buffer the two policies coincide.
    let stream = InputStream::from_frames([vec![
        SliceSpec::new(1, 1, FrameKind::Generic),
        SliceSpec::new(1, 9, FrameKind::Generic),
    ]]);
    let greedy = run_server_only(&stream, 10, 1, GreedyByteValue::new());
    let proactive = run_server_only(&stream, 10, 1, EarlyValueDrop::new(10, 3, 4, 100));
    assert_eq!(greedy.benefit, proactive.benefit);
    assert_eq!(proactive.dropped_slices, 0);
}

#[test]
fn early_value_drop_clears_cheap_data_proactively() {
    // Buffer 4, threshold 1/2, floor 10: after the cheap burst the
    // occupancy (4) exceeds 2, so value-1 slices are evicted early even
    // though no overflow occurred.
    let stream = InputStream::from_frames([
        vec![SliceSpec::new(1, 1, FrameKind::Generic); 5],
        vec![SliceSpec::new(1, 50, FrameKind::Generic); 5],
        vec![],
    ]);
    let proactive = run_server_only(&stream, 4, 1, EarlyValueDrop::new(4, 1, 2, 10));
    let greedy = run_server_only(&stream, 4, 1, GreedyByteValue::new());
    // Both end up keeping the valuable slices; the proactive variant
    // sheds the cheap ones earlier but not more profitably (Greedy's
    // overflow handling already protects the heavy burst).
    assert_eq!(proactive.benefit, greedy.benefit);
    assert!(proactive.dropped_slices >= greedy.dropped_slices);
}

#[test]
fn mixed_plan_reproduces_the_knapsack_dp_optimum_exactly() {
    // The general-granularity counterpart: arbitrary slice sizes, many
    // per frame — the plan replays to the exact optimum.
    let mut rng = SplitMix64::new(2024);
    for trial in 0..60 {
        let stream = InputStream::from_frames((0..10).map(|_| {
            let n = rng.range_u64(0, 3) as usize;
            (0..n)
                .map(|_| {
                    SliceSpec::new(
                        rng.range_u64(1, 4),
                        rng.range_u64(1, 30),
                        FrameKind::Generic,
                    )
                })
                .collect::<Vec<_>>()
        }));
        let b = rng.range_u64(0, 9);
        let r = rng.range_u64(1, 3);
        let (opt, rejected) = rts_offline::optimal_mixed_plan(&stream, b, r);
        let replay = run_server_only(&stream, b, r, PlannedDrops::new(rejected));
        assert_eq!(
            replay.benefit, opt,
            "trial {trial}: replay vs optimum (B={b}, R={r})"
        );
    }
}
