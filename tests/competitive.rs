//! Integration tests for Section 4: competitive guarantees of the
//! greedy policy and the lower-bound constructions.

use realtime_smoothing::{optimal_unit_benefit, GreedyByteValue, InputStream, SliceSpec, TailDrop};
use rts_core::bounds;
use rts_offline::optimal_brute_force;
use rts_sim::run_server_only;
use rts_stream::gen::{greedy_lower_bound_stream, two_scenario_adversary, Scenario};
use rts_stream::rng::SplitMix64;
use rts_stream::FrameKind;

fn random_weighted_unit_stream(
    rng: &mut SplitMix64,
    steps: usize,
    max_per_step: u64,
) -> InputStream {
    InputStream::from_frames((0..steps).map(|_| {
        let n = rng.range_u64(0, max_per_step) as usize;
        (0..n)
            .map(|_| SliceSpec::new(1, rng.range_u64(1, 100), FrameKind::Generic))
            .collect::<Vec<_>>()
    }))
}

#[test]
fn theorem_4_1_greedy_is_4_competitive_on_random_unit_streams() {
    let mut rng = SplitMix64::new(41);
    for trial in 0..80 {
        let stream = random_weighted_unit_stream(&mut rng, 25, 8);
        let b = rng.range_u64(1, 8);
        let r = rng.range_u64(1, 3);
        let greedy = run_server_only(&stream, b, r, GreedyByteValue::new()).benefit;
        let opt = optimal_unit_benefit(&stream, b, r).expect("unit slices");
        assert!(
            opt <= 4 * greedy.max(1) || (opt == 0),
            "trial {trial}: opt {opt} > 4x greedy {greedy} (B={b}, R={r})"
        );
    }
}

#[test]
fn theorem_4_1_variable_sizes_within_refined_bound() {
    // Competitive ratio <= 4B/(B - 2(Lmax - 1)) for slices up to Lmax,
    // verified against the brute-force optimum on small instances.
    let mut rng = SplitMix64::new(42);
    for trial in 0..60 {
        let lmax = rng.range_u64(1, 3);
        let stream = InputStream::from_frames((0..5).map(|_| {
            let n = rng.range_u64(0, 3) as usize;
            (0..n)
                .map(|_| {
                    SliceSpec::new(
                        rng.range_u64(1, lmax),
                        rng.range_u64(1, 60),
                        FrameKind::Generic,
                    )
                })
                .collect::<Vec<_>>()
        }));
        if stream.slice_count() > 13 {
            continue;
        }
        let b = rng.range_u64(2 * lmax, 2 * lmax + 4); // keep the bound non-vacuous
        let r = rng.range_u64(1, 3);
        let Some((num, den)) = bounds::greedy_upper_bound(b, lmax) else {
            continue;
        };
        let greedy = run_server_only(&stream, b, r, GreedyByteValue::new()).benefit;
        let opt = optimal_brute_force(&stream, b, r);
        // opt/greedy <= num/den <=> opt*den <= greedy*num.
        assert!(
            opt as u128 * den as u128 <= (greedy as u128).max(1) * num as u128,
            "trial {trial}: opt {opt} vs greedy {greedy}, bound {num}/{den} \
             (B={b}, R={r}, Lmax={lmax})"
        );
    }
}

#[test]
fn theorem_4_7_measured_ratio_matches_closed_form_exactly() {
    for (b, alpha) in [(5u64, 3u64), (20, 7), (50, 12), (200, 40)] {
        let stream = greedy_lower_bound_stream(b, 1, alpha);
        let greedy = run_server_only(&stream, b, 1, GreedyByteValue::new()).benefit;
        let opt = optimal_unit_benefit(&stream, b, 1).expect("unit slices");
        // Greedy keeps everything until the burst: (B+1)(1 + alpha).
        assert_eq!(greedy, (b + 1) * (1 + alpha), "greedy closed form, b={b}");
        // Optimal: one light slice plus all 2B+1 heavy ones.
        assert_eq!(opt, 1 + alpha * (2 * b + 1), "optimal closed form, b={b}");
        let measured = opt as f64 / greedy as f64;
        let formula = bounds::greedy_lower_bound(alpha as f64, b);
        assert!(
            (measured - formula).abs() < 1e-12,
            "b={b}: measured {measured} vs formula {formula}"
        );
    }
}

#[test]
fn theorem_4_7_ratio_approaches_two() {
    let stream = greedy_lower_bound_stream(2000, 1, 1000);
    let greedy = run_server_only(&stream, 2000, 1, GreedyByteValue::new()).benefit;
    let opt = optimal_unit_benefit(&stream, 2000, 1).expect("unit slices");
    let ratio = opt as f64 / greedy as f64;
    assert!(ratio > 1.99, "ratio {ratio} should approach 2");
    assert!(ratio < 2.0, "the greedy lower bound never reaches 2");
}

#[test]
fn theorem_4_8_adversary_beats_greedy_beyond_the_universal_bound() {
    let b = 300;
    let universal = bounds::deterministic_lower_bound(2.0); // ~1.2287
    let mut worst: f64 = 1.0;
    for scenario in [Scenario::EndAtT1, Scenario::BurstAfterT1] {
        let stream = two_scenario_adversary(b, b, 1, 2, scenario);
        let greedy = run_server_only(&stream, b, 1, GreedyByteValue::new()).benefit;
        let opt = optimal_unit_benefit(&stream, b, 1).expect("unit slices");
        worst = worst.max(opt as f64 / greedy as f64);
    }
    assert!(
        worst >= universal - 1e-9,
        "the adversary should extract at least the universal bound from \
         any deterministic algorithm; got {worst} vs {universal}"
    );
}

#[test]
fn greedy_dominates_taildrop_on_value_skewed_streams() {
    // Not a theorem, but the paper's empirical claim (Section 5):
    // when weights are skewed, Greedy's benefit is never below
    // Tail-Drop's on these workloads.
    let mut rng = SplitMix64::new(55);
    for _ in 0..30 {
        let stream = InputStream::from_frames((0..30).map(|_| {
            let n = rng.range_u64(0, 6) as usize;
            (0..n)
                .map(|_| {
                    let heavy = rng.chance(0.2);
                    SliceSpec::new(1, if heavy { 50 } else { 1 }, FrameKind::Generic)
                })
                .collect::<Vec<_>>()
        }));
        let b = rng.range_u64(1, 6);
        let greedy = run_server_only(&stream, b, 1, GreedyByteValue::new()).benefit;
        let tail = run_server_only(&stream, b, 1, TailDrop::new()).benefit;
        assert!(
            greedy >= tail,
            "greedy {greedy} below tail-drop {tail} (B={b})"
        );
    }
}

#[test]
fn bounds_are_internally_consistent() {
    // The greedy lower bound never exceeds the upper bound.
    for b in [3u64, 10, 100, 1000] {
        for alpha in [1.5, 2.0, 10.0, 1000.0] {
            let lower = bounds::greedy_lower_bound(alpha, b);
            let (num, den) = bounds::greedy_upper_bound(b, 1).expect("unit");
            assert!(lower <= num as f64 / den as f64 + 1e-12);
        }
    }
    // The universal deterministic bound is below the greedy-specific one
    // in the limit (1.28 < 2).
    let (_, best) = bounds::best_deterministic_lower_bound();
    assert!(best < bounds::greedy_lower_bound(1e9, 1_000_000_000));
}
