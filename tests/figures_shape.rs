//! Shape tests for every figure: the qualitative claims of Section 5
//! must hold at reduced scale — who wins, roughly by how much, and
//! where the knees fall. (The binaries regenerate the full-scale
//! tables; EXPERIMENTS.md records those numbers.)

use rts_bench::figures;
use rts_stream::gen::{MpegConfig, MpegSource};
use rts_stream::slicing::FrameSizeTrace;

fn small_trace() -> FrameSizeTrace {
    MpegSource::new(MpegConfig::cnn_like(), rts_bench::workload::SEED).frames(300)
}

fn assert_dominates(better: &[f64], worse: &[f64], label: &str) {
    for (i, (b, w)) in better.iter().zip(worse).enumerate() {
        assert!(b <= &(w + 1e-9), "{label}: row {i} has {b} > {w}");
    }
}

#[test]
fn fig2_fig3_shapes() {
    for (factor, name) in [(1.1, "fig2"), (0.9, "fig3")] {
        let t = figures::loss_sweep_on(&small_trace(), factor, name);
        let tail = t.column_f64("tail_drop");
        let greedy = t.column_f64("greedy");
        let opt = t.column_f64("optimal");
        // Ordering: optimal <= greedy <= tail-drop at every buffer size.
        assert_dominates(&opt, &greedy, name);
        assert_dominates(&greedy, &tail, name);
        // Loss shrinks (weakly) with buffer for optimal.
        for w in opt.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{name}: optimal loss increased");
        }
        // Greedy is well below tail-drop somewhere (the paper's point).
        assert!(
            greedy.iter().zip(&tail).any(|(g, t)| *g < 0.6 * t),
            "{name}: greedy should clearly beat tail-drop somewhere"
        );
    }
}

#[test]
fn fig3_taildrop_loses_more_than_the_rate_deficit() {
    // The paper: at R = 0.9x the byte loss is at least ~10%, and
    // Tail-Drop's *weighted* loss stays above it while Greedy's drops
    // below (it sacrifices cheap bytes).
    // The claim holds "ignoring one full buffer's worth" (the paper's
    // caveat): a finite trace drains after the last arrival, so only
    // buffers well below the total rate deficit are informative.
    let trace = small_trace();
    let t = figures::loss_sweep_on(&trace, 0.9, "fig3");
    let deficit = 0.1 * trace.total_bytes() as f64;
    let tail = t.column_f64("tail_drop");
    let greedy = t.column_f64("greedy");
    let buffers = t.column_f64("buffer");
    let mut informative = 0;
    for ((b, tl), g) in buffers.iter().zip(&tail).zip(&greedy) {
        if *b < 0.4 * deficit {
            informative += 1;
            assert!(*tl > 8.0, "tail-drop loss {tl} at buffer {b}");
            assert!(g < tl, "greedy {g} not below tail-drop {tl}");
        }
    }
    assert!(informative >= 3, "sweep should include small buffers");
}

#[test]
fn fig4_shape() {
    let t = figures::fig4_on(&small_trace(), 8);
    for series in ["tail_drop", "greedy", "optimal"] {
        let vals = t.column_f64(series);
        // Benefit is (weakly) increasing in the link rate.
        for w in vals.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{series} benefit decreased: {vals:?}");
        }
    }
    let tail = t.column_f64("tail_drop");
    let greedy = t.column_f64("greedy");
    let opt = t.column_f64("optimal");
    assert_dominates(&tail, &greedy, "fig4 tail<=greedy (benefit)");
    assert_dominates(&greedy, &opt, "fig4 greedy<=optimal (benefit)");
    // Greedy salvages most of the benefit even at 40% of the rate.
    assert!(
        greedy[0] > 1.5 * tail[0],
        "greedy {} vs tail {}",
        greedy[0],
        tail[0]
    );
}

#[test]
fn fig5_shape() {
    let t = figures::fig5_on(&small_trace());
    let byte = t.column_f64("optimal_byte");
    let frame = t.column_f64("optimal_frame");
    // Byte-granularity optimum dominates the whole-frame optimum.
    assert_dominates(&byte, &frame, "fig5");
    // The gap is large for small buffers (paper: up to ~4x) and
    // vanishes as the buffer grows.
    let first_ratio = frame[0] / byte[0].max(1e-9);
    let last_ratio = frame.last().unwrap() / byte.last().unwrap().max(1e-9);
    assert!(first_ratio > 2.0, "small-buffer ratio {first_ratio}");
    assert!(last_ratio < 1.2, "large-buffer ratio {last_ratio}");
}

#[test]
fn fig6_shape() {
    let t = figures::fig6_on(&small_trace());
    let tb = t.column_f64("tail_byte");
    let gb = t.column_f64("greedy_byte");
    let tf = t.column_f64("tail_frame");
    let gf = t.column_f64("greedy_frame");
    // Greedy beats tail-drop under both granularities.
    assert_dominates(&gb, &tb, "fig6 byte");
    assert_dominates(&gf, &tf, "fig6 frame");
    // The byte-granularity advantage is at least as large as the
    // whole-frame one at the smallest buffer (the paper: the large
    // difference is only partially preserved for whole frames).
    let byte_gap = tb[0] - gb[0];
    let frame_gap = tf[0] - gf[0];
    assert!(
        byte_gap >= frame_gap - 1e-9,
        "byte gap {byte_gap} vs frame gap {frame_gap}"
    );
}

#[test]
fn tradeoff_knees_fall_at_balance() {
    let trace = small_trace();
    let t = figures::tradeoff_buffer_on(&trace, 8);
    let loss = t.column_f64("byte_loss");
    let ratio = t.column_f64("b_over_rd");
    // The minimum loss is at b/rd == 1.0.
    let min_idx = loss
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(
        (ratio[min_idx] - 1.0).abs() < 1e-9,
        "loss minimized at b/rd = {}, losses {loss:?}",
        ratio[min_idx]
    );

    let t = figures::tradeoff_delay_on(&trace, 8);
    let loss = t.column_f64("byte_loss");
    let ratio = t.column_f64("d_over_br");
    let min_idx = loss
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(
        (ratio[min_idx] - 1.0).abs() < 1e-9,
        "loss minimized at d/(b/r) = {}, losses {loss:?}",
        ratio[min_idx]
    );
}

#[test]
fn tradeoff_rate_knee_at_input_rate_not_b_over_d() {
    let t = figures::tradeoff_rate_on(10, 100, 4, 1);
    let loss = t.column_f64("byte_loss");
    // Zero loss exactly from R = 10 (the CBR rate) on; B/D = 4 is far
    // from sufficient.
    assert!(loss[9] < 1e-9, "loss at R=10: {}", loss[9]);
    assert!(loss[3] > 50.0, "loss at R=4 (=B/D): {}", loss[3]);
}

#[test]
fn lemma36_table_matches_bound() {
    let t = figures::lemma36_on(8, 10);
    let measured = t.column_f64("measured_ratio");
    let bound = t.column_f64("bound_b1_over_b2");
    for (m, b) in measured.iter().zip(&bound) {
        assert!(m >= b, "measured {m} below bound {b}");
        assert!(m - b <= 1.0 / 8.0 + 1e-9, "gap exceeds 1/B2");
    }
}

#[test]
fn thm47_table_is_exact() {
    let t = figures::thm47_on(&[(10, 2), (25, 5)]);
    let measured = t.column_f64("measured_ratio");
    let formula = t.column_f64("closed_form");
    for (m, f) in measured.iter().zip(&formula) {
        assert!((m - f).abs() < 1e-3, "measured {m} vs formula {f}");
    }
}

#[test]
fn thm48_adversary_reaches_universal_bound_against_greedy() {
    let t = figures::thm48_on(100);
    let bound = t.column_f64("analytic_bound");
    let achieved = t.column_f64("adversary_vs_greedy");
    for (b, a) in bound.iter().zip(&achieved) {
        assert!(a >= b, "adversary achieved {a} below the bound {b}");
    }
}

#[test]
fn ratio_audit_within_bound_and_throughput_optimal() {
    let t = figures::ratio_audit_on(60, &[5]);
    let ratios = t.column_f64("ratio");
    for r in ratios {
        assert!((1.0..=4.0).contains(&r), "ratio {r} outside [1, 4]");
    }
    let idx = t.column("throughput_optimal").unwrap();
    for row in &t.rows {
        assert_eq!(row[idx], "equal", "Theorem 3.5 violated: {row:?}");
    }
}

#[test]
fn regret_sweep_shape() {
    let trace = small_trace();
    let t = figures::regret_sweep_on(&trace, 1.1, "regret_sweep_test");
    assert_eq!(t.rows.len(), 26, "one row per sweep point");
    let opt = t.column_f64("optimal");
    let regret_tail = t.column_f64("regret_tail");
    let regret_greedy = t.column_f64("regret_greedy");
    // OPT is exact, so no policy can beat it: every regret >= 1.
    for (rt, rg) in regret_tail.iter().zip(&regret_greedy) {
        assert!(*rt >= 1.0 - 1e-9, "tail-drop regret {rt} below 1");
        assert!(*rg >= 1.0 - 1e-9, "greedy regret {rg} below 1");
        // Theorem 4.1: greedy is 4-competitive.
        assert!(*rg <= 4.0 + 1e-9, "greedy regret {rg} above the bound 4");
    }
    // Greedy never does worse than Tail-Drop on these workloads.
    assert_dominates(&regret_greedy, &regret_tail, "regret greedy<=tail");
    // The optimum is weakly increasing in the buffer.
    for w in opt.windows(2) {
        assert!(w[1] >= w[0] - 1e-9, "optimal benefit decreased: {opt:?}");
    }
    // The warm-sweep column matches a cold exact solve (spot check).
    let stream = rts_bench::workload::byte_stream(&trace);
    let rate = rts_bench::workload::rate_at(&trace, 1.1);
    let (_, b0) = rts_bench::workload::buffer_sweep(&trace)[0];
    let cold = rts_offline::optimal_unit_benefit(&stream, b0, rate).expect("unit slices");
    assert_eq!(opt[0] as u64, cold, "warm sweep diverges from cold solve");
}

#[test]
fn renegotiated_schedules_are_lossless_under_simulation() {
    // The fluid per-window bound must be honoured by the real server:
    // running the computed schedule with an ample buffer loses nothing.
    use rts_bench::figures::renegotiated_schedule;
    use rts_core::TailDrop;
    use rts_sim::run_server_with_rate_schedule;
    use rts_stream::slicing::Slicing;
    use rts_stream::weight::WeightAssignment;

    let trace = small_trace();
    let stream = trace.materialize(Slicing::PerByte, WeightAssignment::Uniform(1));
    let ample = stream.total_bytes();
    for w in [25usize, 60, 150] {
        let schedule = renegotiated_schedule(&trace, w);
        let run = run_server_with_rate_schedule(&stream, ample, &schedule, TailDrop::new());
        assert_eq!(
            run.throughput,
            stream.total_bytes(),
            "W={w}: schedule should be lossless"
        );
    }
}

#[test]
fn renegotiated_schedule_sizes_each_window_for_drain_by_end() {
    use rts_bench::figures::renegotiated_schedule;
    use rts_stream::slicing::FrameSizeTrace;
    use rts_stream::FrameKind;

    let t = |sizes: &[u64]| {
        FrameSizeTrace::new(sizes.iter().map(|&s| (FrameKind::Generic, s)).collect())
    };
    // A 9-unit frame in the last slot of a 3-step window must ship in
    // one step: rate 9. Spread at the front, 3 steps suffice: rate 2.
    assert_eq!(renegotiated_schedule(&t(&[0, 0, 9]), 3), vec![(0, 9)]);
    assert_eq!(renegotiated_schedule(&t(&[6, 0, 0]), 3), vec![(0, 2)]);
    // Two windows, independent rates, correct offsets.
    assert_eq!(
        renegotiated_schedule(&t(&[4, 0, 0, 0, 8, 0]), 3),
        vec![(0, 2), (3, 4)]
    );
    // A trailing partial window is sized over its own length.
    assert_eq!(
        renegotiated_schedule(&t(&[0, 0, 0, 5]), 3),
        vec![(0, 1), (3, 5)]
    );
}
