//! Links with positive jitter (the paper's Section 6 open problem),
//! made executable: jitter control restores every Section 3 guarantee
//! at a quantifiable cost in delay and buffer space.

use realtime_smoothing::{
    simulate, GreedyByteValue, InputStream, SimConfig, SliceSpec, SmoothingParams, TailDrop,
};
use rts_core::ClientDropReason;
use rts_sim::{simulate_with_link, JitterControl, JitteredLink};
use rts_stream::gen::{MpegConfig, MpegSource};
use rts_stream::rng::SplitMix64;
use rts_stream::slicing::Slicing;
use rts_stream::weight::WeightAssignment;
use rts_stream::FrameKind;

fn random_stream(rng: &mut SplitMix64, steps: usize) -> InputStream {
    InputStream::from_frames((0..steps).map(|_| {
        let n = rng.range_u64(0, 5) as usize;
        (0..n)
            .map(|_| SliceSpec::new(1, rng.range_u64(1, 20), FrameKind::Generic))
            .collect::<Vec<_>>()
    }))
}

#[test]
fn controlled_jitter_is_identical_to_constant_delay_p_plus_jmax() {
    let mut rng = SplitMix64::new(600);
    for trial in 0..20 {
        let stream = random_stream(&mut rng, 25);
        let (p, jmax) = (rng.range_u64(0, 3), rng.range_u64(0, 5));
        let rate = rng.range_u64(1, 4);
        let delay = rng.range_u64(1, 5);

        // Controlled jittered run: the client plans for P' = P + Jmax.
        let params_ctl = SmoothingParams {
            buffer: rate * delay,
            rate,
            delay,
            link_delay: p + jmax,
        };
        let jittered = simulate_with_link(
            &stream,
            SimConfig::new(params_ctl),
            JitteredLink::new(p, jmax, JitterControl::Absorb, trial),
            TailDrop::new(),
        );

        // Reference: a genuinely constant link at P'.
        let constant = simulate(&stream, SimConfig::new(params_ctl), TailDrop::new());

        assert_eq!(
            jittered.metrics.benefit, constant.metrics.benefit,
            "trial {trial}"
        );
        assert_eq!(
            jittered.metrics.played_bytes, constant.metrics.played_bytes,
            "trial {trial}"
        );
        assert_eq!(jittered.metrics.client_dropped_slices, 0, "trial {trial}");
        // Identical playout times slice by slice.
        for (a, b) in jittered.record.played().zip(constant.record.played()) {
            assert_eq!(a.0.slice.id, b.0.slice.id);
            assert_eq!(a.1, b.1, "trial {trial}: playout diverged");
        }
    }
}

#[test]
fn uncontrolled_jitter_with_optimistic_client_loses_late_data() {
    // The client assumes the base delay P; the network adds up to Jmax.
    let stream = InputStream::from_frames(vec![vec![SliceSpec::unit(); 2]; 40]);
    let params = SmoothingParams {
        buffer: 4,
        rate: 2,
        delay: 2,
        link_delay: 1, // optimistic: true delay is 1..=1+jmax
    };
    let report = simulate_with_link(
        &stream,
        SimConfig::new(params),
        JitteredLink::new(1, 4, JitterControl::None, 99),
        TailDrop::new(),
    );
    let late = report
        .metrics
        .client_drop_reasons
        .get(&ClientDropReason::Late)
        .copied()
        .unwrap_or(0)
        + report
            .metrics
            .client_drop_reasons
            .get(&ClientDropReason::Incomplete)
            .copied()
            .unwrap_or(0);
    assert!(
        late > 0,
        "optimistic client should lose late chunks: {:?}",
        report.metrics.client_drop_reasons
    );
}

#[test]
fn budgeting_the_full_jitter_bound_restores_losslessness() {
    // Same jittery network, but the client budgets P' = P + Jmax (and
    // the smoothing delay rides on top): no loss, exactly as the
    // paper's "justified by jitter control algorithms" remark claims.
    let stream = InputStream::from_frames(vec![vec![SliceSpec::unit(); 2]; 40]);
    let params = SmoothingParams {
        buffer: 4,
        rate: 2,
        delay: 2,
        link_delay: 5, // P + Jmax = 1 + 4
    };
    let report = simulate_with_link(
        &stream,
        SimConfig::new(params),
        JitteredLink::new(1, 4, JitterControl::Absorb, 99),
        TailDrop::new(),
    );
    assert_eq!(report.metrics.client_dropped_slices, 0);
    assert_eq!(report.metrics.played_bytes, 80);
}

#[test]
fn jitter_control_buffer_cost_is_at_most_r_times_jmax() {
    // The absorbed chunks wait on the "link side", but the client-side
    // cost shows up as extra occupancy headroom needed when the client
    // *also* budgets the delay: client occupancy stays within B even
    // with the larger P', i.e. the extra space lives in the re-timing
    // stage whose depth is at most R * Jmax bytes beyond the constant
    // link's pipe content.
    let trace = MpegSource::new(MpegConfig::cnn_like(), 5).frames(150);
    let stream = trace.materialize(Slicing::PerByte, WeightAssignment::MPEG_12_8_1);
    let rate = stream.stats().rate_at(1.0);
    let (p, jmax) = (2, 6);
    let params = SmoothingParams::balanced_from_rate_delay(rate, 5, p + jmax);
    let jittered = simulate_with_link(
        &stream,
        SimConfig::new(params),
        JitteredLink::new(p, jmax, JitterControl::Absorb, 3),
        GreedyByteValue::new(),
    );
    let baseline = simulate(
        &stream,
        SimConfig::new(SmoothingParams::balanced_from_rate_delay(rate, 5, p)),
        GreedyByteValue::new(),
    );
    // Same benefit either way (the server side is identical)...
    assert_eq!(jittered.metrics.benefit, baseline.metrics.benefit);
    // ...and the pipe holds at most R * Jmax more than the constant
    // link's R * P.
    assert!(
        jittered.metrics.link_in_flight_max <= baseline.metrics.link_in_flight_max + rate * jmax,
        "in-flight {} vs baseline {} + R*Jmax {}",
        jittered.metrics.link_in_flight_max,
        baseline.metrics.link_in_flight_max,
        rate * jmax
    );
    // Client buffer requirement is unchanged (Lemma 3.4 with P' in
    // place of P).
    assert!(jittered.metrics.client_occupancy_max <= params.buffer);
}

#[test]
fn loss_grows_with_jitter_for_optimistic_clients() {
    let trace = MpegSource::new(MpegConfig::cnn_like(), 11).frames(150);
    let stream = trace.materialize(Slicing::PerByte, WeightAssignment::MPEG_12_8_1);
    let rate = stream.stats().rate_at(1.0);
    let params = SmoothingParams::balanced_from_rate_delay(rate, 4, 2);
    let mut prev_loss = -1.0;
    for jmax in [0, 2, 4, 8] {
        let report = simulate_with_link(
            &stream,
            SimConfig::new(params),
            JitteredLink::new(2, jmax, JitterControl::None, 1),
            GreedyByteValue::new(),
        );
        let loss = report.metrics.weighted_loss();
        assert!(
            loss >= prev_loss - 0.02,
            "loss should broadly grow with jitter: {loss} after {prev_loss}"
        );
        prev_loss = loss;
    }
    assert!(prev_loss > 0.05, "jmax=8 should hurt an optimistic client");
}
