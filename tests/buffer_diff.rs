//! Differential test of the server-buffer backings: the ring-buffer
//! fast path must produce **bit-identical** schedules to the map-backed
//! reference for every drop policy the paper evaluates, on long seeded
//! MPEG-like streams, under both slicing granularities.
//!
//! The two backings live behind `BufferBacking` in the same binary, so
//! one `SimConfig` toggle runs the exact same engine code over either
//! store; any divergence in FIFO order, victim lookup, or tombstone
//! compaction shows up as a differing `ScheduleRecord`.

use rts_core::policy::{GreedyByteValue, HeadDrop, RandomDrop, TailDrop};
use rts_core::tradeoff::SmoothingParams;
use rts_core::{BufferBacking, DropPolicy};
use rts_sim::{simulate, SimConfig, SimReport};
use rts_stream::gen::{MpegConfig, MpegSource};
use rts_stream::slicing::Slicing;
use rts_stream::weight::WeightAssignment;
use rts_stream::InputStream;

const SEED: u64 = 0xd1ff_5eed;
const FRAMES: usize = 10_000;

fn mpeg_stream(slicing: Slicing) -> InputStream {
    MpegSource::new(MpegConfig::cnn_like(), SEED)
        .frames(FRAMES)
        .materialize(slicing, WeightAssignment::MPEG_12_8_1)
}

/// Runs the same (stream, params, policy) on both backings and asserts
/// the full schedule records are identical, slice by slice and step by
/// step. The rate sits below the stream's peak so the drop paths (and
/// hence mid-queue removals / tombstones) see real traffic.
fn assert_backings_agree<P, F>(slicing: Slicing, make_policy: F)
where
    P: DropPolicy,
    F: Fn() -> P,
{
    let stream = mpeg_stream(slicing);
    // ~95th-percentile rate: a few percent of slots overflow.
    let rate = stream.stats().rate_at(0.95).max(1);
    let params = SmoothingParams::balanced_from_rate_delay(rate, 6, 2);

    let ring: SimReport = simulate(
        &stream,
        SimConfig::new(params).with_backing(BufferBacking::Ring),
        make_policy(),
    );
    let map: SimReport = simulate(
        &stream,
        SimConfig::new(params).with_backing(BufferBacking::Map),
        make_policy(),
    );

    let policy = ring.policy;
    assert_eq!(
        ring.metrics, map.metrics,
        "{policy} under {slicing:?}: aggregate metrics diverge"
    );
    assert_eq!(
        ring.record.steps(),
        map.record.steps(),
        "{policy} under {slicing:?}: per-step series diverge"
    );
    assert_eq!(
        ring.record.slices(),
        map.record.slices(),
        "{policy} under {slicing:?}: per-slice records diverge"
    );
    // The run must actually exercise the drop machinery for the
    // comparison to mean anything.
    assert!(
        ring.metrics.server_dropped_slices > 0,
        "{policy} under {slicing:?}: no server drops — differential run too easy"
    );
}

#[test]
fn tail_drop_schedules_are_bit_identical() {
    for slicing in [Slicing::WholeFrame, Slicing::PerByte] {
        assert_backings_agree(slicing, TailDrop::new);
    }
}

#[test]
fn head_drop_schedules_are_bit_identical() {
    for slicing in [Slicing::WholeFrame, Slicing::PerByte] {
        assert_backings_agree(slicing, HeadDrop::new);
    }
}

#[test]
fn greedy_schedules_are_bit_identical() {
    for slicing in [Slicing::WholeFrame, Slicing::PerByte] {
        assert_backings_agree(slicing, GreedyByteValue::new);
    }
}

#[test]
fn random_drop_schedules_are_bit_identical() {
    for slicing in [Slicing::WholeFrame, Slicing::PerByte] {
        assert_backings_agree(slicing, || RandomDrop::new(7));
    }
}
