//! Differential testing against an independent reference model.
//!
//! This file contains a second, deliberately naive implementation of
//! the whole pipeline that follows the paper's equations *byte by
//! byte*: every byte is a token in a `VecDeque`, drops scan the buffer
//! linearly, the link is a list of (delivery-time, byte) pairs. It
//! shares no code with the engine (different data structures, different
//! event bookkeeping), so agreement between the two on random inputs is
//! strong evidence that both implement the model of Section 2.

use std::collections::{HashMap, VecDeque};

use realtime_smoothing::{
    simulate, GreedyByteValue, HeadDrop, InputStream, SimConfig, SliceSpec, SmoothingParams,
    TailDrop,
};
use rts_stream::rng::SplitMix64;
use rts_stream::{Bytes, FrameKind, Slice, SliceId, Time};

/// Which drop rule the reference model applies.
#[derive(Clone, Copy, PartialEq)]
enum RefPolicy {
    Tail,
    Head,
    Greedy,
}

/// Outcome of a reference run.
#[derive(Debug, PartialEq, Eq)]
struct RefOutcome {
    played: Vec<(SliceId, Time)>,
    benefit: u64,
    played_bytes: Bytes,
    server_drops: usize,
    client_drops: usize,
}

/// A byte in the reference server buffer.
#[derive(Clone, Copy)]
struct ByteTok {
    slice: SliceId,
}

fn reference_run(
    stream: &InputStream,
    params: SmoothingParams,
    client_capacity: Bytes,
    policy: RefPolicy,
) -> RefOutcome {
    let slices: HashMap<SliceId, Slice> = stream.slices().map(|s| (s.id, *s)).collect();
    let mut server: VecDeque<ByteTok> = VecDeque::new();
    let mut sent_of: HashMap<SliceId, Bytes> = HashMap::new(); // bytes already on the link
    let mut link: VecDeque<(Time, SliceId)> = VecDeque::new();
    let mut client_recv: HashMap<SliceId, Bytes> = HashMap::new();
    let mut client_dead: Vec<SliceId> = Vec::new(); // discarded at client
    let mut out = RefOutcome {
        played: Vec::new(),
        benefit: 0,
        played_bytes: 0,
        server_drops: 0,
        client_drops: 0,
    };

    let last = stream.last_arrival().unwrap_or(0);
    let horizon = last + params.link_delay + params.delay + stream.total_bytes() + 8;
    let mut frames = stream.frames().iter().peekable();

    for t in 0..=horizon {
        // --- server: arrivals ---
        if let Some(f) = frames.peek() {
            if f.time == t {
                for s in &frames.next().expect("peeked").slices {
                    for _ in 0..s.size {
                        server.push_back(ByteTok { slice: s.id });
                    }
                }
            }
        }
        // --- server: whole-slice drops until occupancy fits B + R ---
        while server.len() as Bytes > params.buffer + params.rate {
            // Distinct slices present, in FIFO order of their first byte.
            let mut order: Vec<SliceId> = Vec::new();
            for b in &server {
                if !order.contains(&b.slice) {
                    order.push(b.slice);
                }
            }
            let transmitting = |id: SliceId| sent_of.get(&id).copied().unwrap_or(0) > 0;
            let victim = match policy {
                RefPolicy::Tail => order.iter().rev().copied().find(|&id| !transmitting(id)),
                RefPolicy::Head => order.iter().copied().find(|&id| !transmitting(id)),
                RefPolicy::Greedy => order
                    .iter()
                    .copied()
                    .filter(|&id| !transmitting(id))
                    .min_by(|&a, &b| {
                        let (sa, sb) = (&slices[&a], &slices[&b]);
                        (sa.weight as u128 * sb.size as u128)
                            .cmp(&(sb.weight as u128 * sa.size as u128))
                            .then(b.cmp(&a)) // ties: newest (larger id ~ newer seq)
                    }),
            }
            .expect("some droppable slice exists during overflow");
            server.retain(|b| b.slice != victim);
            out.server_drops += 1;
        }
        // --- server: send R bytes FIFO ---
        for _ in 0..params.rate {
            let Some(b) = server.pop_front() else { break };
            *sent_of.entry(b.slice).or_default() += 1;
            link.push_back((t + params.link_delay, b.slice));
        }
        // --- link: deliveries ---
        while let Some(&(due, id)) = link.front() {
            if due > t {
                break;
            }
            link.pop_front();
            let deadline = slices[&id].arrival + params.link_delay + params.delay;
            if client_dead.contains(&id) {
                continue;
            }
            if t > deadline {
                client_dead.push(id);
                out.client_drops += 1;
                client_recv.remove(&id);
                continue;
            }
            *client_recv.entry(id).or_default() += 1;
        }
        // --- client: playout of frame t - P - D ---
        let play_arrival = t.checked_sub(params.link_delay + params.delay);
        if let Some(at) = play_arrival {
            let due: Vec<SliceId> = client_recv
                .keys()
                .copied()
                .filter(|id| slices[id].arrival == at)
                .collect();
            for id in due {
                let got = client_recv.remove(&id).expect("key present");
                if got == slices[&id].size {
                    out.played.push((id, t));
                    out.benefit += slices[&id].weight;
                    out.played_bytes += got;
                } else {
                    client_dead.push(id);
                    out.client_drops += 1;
                }
            }
        }
        // --- client: end-of-step capacity (drop newest deadlines) ---
        loop {
            let occupancy: Bytes = client_recv.values().sum();
            if occupancy <= client_capacity {
                break;
            }
            let victim = client_recv
                .keys()
                .copied()
                .max_by_key(|id| {
                    let s = &slices[id];
                    (s.arrival + params.link_delay + params.delay, s.id)
                })
                .expect("occupancy positive implies stored slices");
            client_recv.remove(&victim);
            client_dead.push(victim);
            out.client_drops += 1;
        }
    }
    out.played.sort();
    out
}

fn engine_outcome<P: realtime_smoothing::DropPolicy>(
    stream: &InputStream,
    params: SmoothingParams,
    client_capacity: Bytes,
    policy: P,
) -> RefOutcome {
    let config = SimConfig {
        client_capacity: Some(client_capacity),
        ..SimConfig::new(params)
    };
    let report = simulate(stream, config, policy);
    let mut played: Vec<(SliceId, Time)> = report
        .record
        .played()
        .map(|(r, t)| (r.slice.id, t))
        .collect();
    played.sort();
    RefOutcome {
        played,
        benefit: report.metrics.benefit,
        played_bytes: report.metrics.played_bytes,
        server_drops: report.metrics.server_dropped_slices as usize,
        client_drops: report.metrics.client_dropped_slices as usize,
    }
}

fn random_stream(rng: &mut SplitMix64, steps: usize, lmax: u64) -> InputStream {
    InputStream::from_frames((0..steps).map(|_| {
        let n = rng.range_u64(0, 4) as usize;
        (0..n)
            .map(|_| {
                SliceSpec::new(
                    rng.range_u64(1, lmax),
                    rng.range_u64(1, 25),
                    FrameKind::Generic,
                )
            })
            .collect::<Vec<_>>()
    }))
}

fn random_params(rng: &mut SplitMix64) -> (SmoothingParams, Bytes) {
    let params = SmoothingParams {
        buffer: rng.range_u64(0, 10),
        rate: rng.range_u64(1, 4),
        delay: rng.range_u64(0, 5),
        link_delay: rng.range_u64(0, 3),
    };
    let bc = rng.range_u64(0, 12);
    (params, bc)
}

#[test]
fn engine_matches_reference_tail_drop() {
    let mut rng = SplitMix64::new(4000);
    for trial in 0..120 {
        let stream = random_stream(&mut rng, 14, 3);
        let (params, bc) = random_params(&mut rng);
        let a = engine_outcome(&stream, params, bc, TailDrop::new());
        let b = reference_run(&stream, params, bc, RefPolicy::Tail);
        assert_eq!(a, b, "trial {trial}, params {params:?}, bc {bc}");
    }
}

#[test]
fn engine_matches_reference_head_drop() {
    let mut rng = SplitMix64::new(4001);
    for trial in 0..120 {
        let stream = random_stream(&mut rng, 14, 3);
        let (params, bc) = random_params(&mut rng);
        let a = engine_outcome(&stream, params, bc, HeadDrop::new());
        let b = reference_run(&stream, params, bc, RefPolicy::Head);
        assert_eq!(a, b, "trial {trial}, params {params:?}, bc {bc}");
    }
}

#[test]
fn engine_matches_reference_greedy() {
    let mut rng = SplitMix64::new(4002);
    for trial in 0..120 {
        let stream = random_stream(&mut rng, 14, 3);
        let (params, bc) = random_params(&mut rng);
        let a = engine_outcome(&stream, params, bc, GreedyByteValue::new());
        let b = reference_run(&stream, params, bc, RefPolicy::Greedy);
        assert_eq!(a, b, "trial {trial}, params {params:?}, bc {bc}");
    }
}

#[test]
fn engine_matches_reference_on_unit_bursts() {
    // Degenerate shapes: all-at-once bursts, long silences, zero buffer.
    let mut rng = SplitMix64::new(4003);
    for trial in 0..60 {
        let burst = rng.range_u64(1, 20) as usize;
        let silence = rng.range_u64(0, 10) as usize;
        let mut frames = vec![vec![SliceSpec::unit(); burst]];
        frames.extend(std::iter::repeat_n(vec![], silence));
        let stream = InputStream::from_frames(frames);
        let (params, bc) = random_params(&mut rng);
        let a = engine_outcome(&stream, params, bc, TailDrop::new());
        let b = reference_run(&stream, params, bc, RefPolicy::Tail);
        assert_eq!(a, b, "trial {trial}");
    }
}
