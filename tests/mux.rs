//! Integration tests for the rts-mux shared-link subsystem: the link
//! and buffer invariants under random MPEG-like workloads, loss-free
//! admission-controlled CBR, and a regression pin on the multiplexing
//! gain figure.
//!
//! Cases use the workspace's deterministic [`SplitMix64`] PRNG so the
//! suite runs offline and failures reproduce exactly.

use realtime_smoothing::{
    DropPolicy, GreedyAcrossSessions, GreedyByteValue, InputStream, LinkScheduler, MpegConfig,
    MpegSource, Mux, MuxReport, RoundRobin, SessionSpec, SliceSpec, Slicing, SmoothingParams,
    TailDrop, WeightAssignment, WeightedFair,
};
use rts_stream::rng::SplitMix64;

const CASES: u64 = 24;

fn scheduler_for(case: u64) -> Box<dyn LinkScheduler> {
    match case % 3 {
        0 => Box::new(RoundRobin::new()),
        1 => Box::new(WeightedFair::new()),
        _ => Box::new(GreedyAcrossSessions::new()),
    }
}

fn policy_for(case: u64) -> Box<dyn DropPolicy> {
    if case.is_multiple_of(2) {
        Box::new(TailDrop::new())
    } else {
        Box::new(GreedyByteValue::new())
    }
}

/// A random MPEG-like multiplexer: 1–4 sessions, random frame counts,
/// random smoothing parameters, mixed schedulers and policies. The link
/// may be under-provisioned (overbooked admission), so losses happen —
/// the invariants must hold regardless.
fn random_mux(rng: &mut SplitMix64, case: u64) -> (MuxReport, u64) {
    let k = rng.range_u64(1, 4);
    let mut rates = Vec::new();
    let mut specs = Vec::new();
    for i in 0..k {
        let stream = MpegSource::new(MpegConfig::cnn_like(), rng.next_u64())
            .frames(rng.range_u64(20, 120) as usize)
            .materialize(Slicing::PerByte, WeightAssignment::MPEG_12_8_1);
        let factor = 0.6 + rng.next_f64();
        let rate = stream.stats().rate_at(factor).max(1);
        let delay = rng.range_u64(1, 12);
        let params = SmoothingParams::balanced_from_rate_delay(rate, delay, rng.range_u64(0, 3));
        rates.push(rate);
        specs.push(
            SessionSpec::new(stream, params, policy_for(case + i))
                .with_weight(rng.range_u64(1, 9))
                .with_label(format!("s{i}")),
        );
    }
    // Link between half and the full sum of nominal rates; admit with a
    // matching overbooking factor so every session gets in.
    let sum: u64 = rates.iter().sum();
    let link_rate = (sum.div_ceil(2) + rng.range_u64(0, sum / 2)).max(1);
    let mut mux = Mux::with_overbooking(link_rate, scheduler_for(case), 2, 1);
    for spec in specs {
        mux.admit(spec).expect("2x overbooking covers the sum");
    }
    (mux.run(), link_rate)
}

#[test]
fn link_conservation_under_random_workloads() {
    let mut rng = SplitMix64::new(0x0A0B_0001);
    for case in 0..CASES {
        let (report, link_rate) = random_mux(&mut rng, case);
        assert!(
            report.per_slot_sent.iter().all(|&s| s <= link_rate),
            "case {case} ({}): some slot sent more than the link rate {link_rate}",
            report.scheduler
        );
        assert_eq!(
            report.per_slot_sent.iter().sum::<u64>(),
            report.link_bytes_sent(),
            "case {case}: per-slot sum disagrees with the aggregate"
        );
        let session_sent: u64 = report.sessions.iter().map(|m| m.sent_bytes).sum();
        assert_eq!(
            session_sent,
            report.link_bytes_sent(),
            "case {case}: sessions and link disagree on bytes sent"
        );
        assert!(
            report.utilization() <= 1.0 + 1e-12,
            "case {case}: utilization above 1"
        );
    }
}

#[test]
fn buffer_bounds_under_random_workloads() {
    let mut rng = SplitMix64::new(0x0A0B_0002);
    for case in 0..CASES {
        let (report, _) = random_mux(&mut rng, case);
        for m in &report.sessions {
            assert!(
                m.server_occupancy_max <= m.buffer_capacity,
                "case {case} session {}: occupancy {} exceeded B = {}",
                m.label,
                m.server_occupancy_max,
                m.buffer_capacity
            );
            assert!(
                m.delivered_weight <= m.offered_weight,
                "case {case} session {}: delivered more weight than offered",
                m.label
            );
            assert!(
                m.delivered_bytes + m.server_dropped_bytes <= m.offered_bytes,
                "case {case} session {}: bytes not conserved",
                m.label
            );
        }
    }
}

/// Admission-controlled CBR sessions never lose a byte, whichever
/// max-min scheduler runs the link (Theorem 3.5's B = R·D guarantee
/// survives sharing).
#[test]
fn admitted_cbr_is_loss_free_for_fair_schedulers() {
    for fair in [0u64, 1] {
        let mut mux = Mux::new(10, scheduler_for(fair));
        for (i, rate) in [5u64, 3, 2].into_iter().enumerate() {
            let stream = InputStream::from_frames(vec![
                vec![SliceSpec::unit(); rate as usize];
                40
            ]);
            let params = SmoothingParams::balanced_from_rate_delay(rate, 3, 1);
            mux.admit(
                SessionSpec::new(stream, params, policy_for(i as u64))
                    .with_weight(rate),
            )
            .expect("rates sum exactly to the link");
        }
        let report = mux.run();
        assert_eq!(
            report.weighted_loss(),
            0.0,
            "{}: admitted CBR lost weight",
            report.scheduler
        );
        assert!(report.max_slot_sent() <= 10);
    }
}

/// Regression pin on the multiplexing-gain figure: sharing one link
/// never needs more capacity than dedicated links (gain >= 1), and the
/// lossless rates fall as the delay budget grows.
#[test]
fn mux_gain_shape_and_monotonicity() {
    let delays = [0u64, 4, 16];
    let table = rts_bench::figures::mux_gain_on(2, 120, &delays);
    assert_eq!(table.headers, ["delay", "sum_separate", "shared", "gain"]);
    assert_eq!(table.rows.len(), delays.len());
    let mut prev_sep = u64::MAX;
    let mut prev_shared = u64::MAX;
    for (row, d) in table.rows.iter().zip(delays) {
        assert_eq!(row[0], d.to_string());
        let sep: u64 = row[1].parse().expect("sum_separate is integral");
        let shared: u64 = row[2].parse().expect("shared is integral");
        let gain: f64 = row[3].parse().expect("gain is numeric");
        assert!(shared <= sep, "delay {d}: sharing needed more capacity");
        assert!(gain >= 1.0 - 1e-9, "delay {d}: gain below 1");
        assert!(
            (gain - sep as f64 / shared as f64).abs() < 1e-3,
            "delay {d}: gain column inconsistent with rates"
        );
        assert!(sep <= prev_sep, "delay {d}: separate rate increased");
        assert!(shared <= prev_shared, "delay {d}: shared rate increased");
        prev_sep = sep;
        prev_shared = shared;
    }
}
