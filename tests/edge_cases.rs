//! Edge-case coverage for the full pipeline: degenerate parameters and
//! pathological streams must produce valid (if lossy) schedules, never
//! panics or stuck loops.

use realtime_smoothing::{
    simulate, validate, GreedyByteValue, InputStream, SimConfig, SliceSpec, SmoothingParams,
    TailDrop,
};
use rts_sim::run_server_only;
use rts_stream::FrameKind;

fn params(buffer: u64, rate: u64, delay: u64, link_delay: u64) -> SimConfig {
    SimConfig::new(SmoothingParams {
        buffer,
        rate,
        delay,
        link_delay,
    })
}

#[test]
fn zero_delay_zero_link_delay_is_cut_through() {
    // D = 0, P = 0: a slice plays in the very step it arrives, if the
    // link can carry it whole that step.
    let stream = InputStream::from_frames(vec![vec![SliceSpec::unit(); 2]; 5]);
    let report = simulate(&stream, params(0, 2, 0, 0), TailDrop::new());
    validate(&report).unwrap();
    assert_eq!(report.metrics.played_bytes, 10);
    for (rec, playout) in report.record.played() {
        assert_eq!(playout, rec.slice.arrival);
    }
}

#[test]
fn zero_delay_with_multi_byte_slices_loses_them() {
    // A 2-byte slice cannot complete by its own arrival step at R = 1:
    // with D = 0 it always misses the deadline.
    let stream = InputStream::from_frames([[SliceSpec::new(2, 2, FrameKind::Generic)]]);
    let report = simulate(&stream, params(4, 1, 0, 0), TailDrop::new());
    validate(&report).unwrap();
    assert_eq!(report.metrics.played_bytes, 0);
    assert_eq!(report.metrics.client_dropped_slices, 1);
}

#[test]
fn zero_client_capacity_only_plays_same_step_arrivals() {
    // Bc = 0: anything that must wait at the client dies; data that
    // arrives exactly at its deadline still plays (it never occupies
    // the buffer between steps).
    let stream = InputStream::from_frames([vec![SliceSpec::unit(); 4], vec![], vec![], vec![]]);
    let config = SimConfig {
        client_capacity: Some(0),
        ..SimConfig::new(SmoothingParams {
            buffer: 4,
            rate: 1,
            delay: 3,
            link_delay: 0,
        })
    };
    let report = simulate(&stream, config, TailDrop::new());
    validate(&report).unwrap();
    // The slice sent at t=3 arrives exactly at the frame-0 deadline.
    assert_eq!(report.metrics.played_bytes, 1, "{:?}", report.metrics);
}

#[test]
fn very_large_link_delay() {
    let stream = InputStream::from_frames([vec![SliceSpec::unit(); 3]]);
    let report = simulate(&stream, params(3, 1, 3, 1000), TailDrop::new());
    validate(&report).unwrap();
    assert_eq!(report.metrics.played_bytes, 3);
    for (_, playout) in report.record.played() {
        assert_eq!(playout, 1003);
    }
}

#[test]
fn stream_of_only_empty_frames() {
    let stream = InputStream::from_frames(vec![Vec::<SliceSpec>::new(); 20]);
    let report = simulate(&stream, params(4, 2, 2, 1), GreedyByteValue::new());
    validate(&report).unwrap();
    assert_eq!(report.metrics.offered_bytes, 0);
    assert_eq!(report.metrics.played_bytes, 0);
}

#[test]
fn giant_slice_straddles_many_steps() {
    // One 100-byte slice at R = 3 takes 34 steps; balanced params make
    // it play on time.
    let mut b = InputStream::builder();
    b.frame(0, [SliceSpec::new(100, 1000, FrameKind::I)]);
    let stream = b.build();
    let p = SmoothingParams::balanced_from_buffer_rate(100, 3, 0);
    let report = simulate(&stream, SimConfig::new(p), TailDrop::new());
    validate(&report).unwrap();
    assert_eq!(report.metrics.played_bytes, 100);
    assert_eq!(report.metrics.benefit, 1000);
}

#[test]
fn zero_weight_streams_have_zero_benefit_but_full_throughput() {
    let stream = InputStream::from_frames([vec![
        SliceSpec::new(1, 0, FrameKind::B),
        SliceSpec::new(1, 0, FrameKind::B),
    ]]);
    let run = run_server_only(&stream, 2, 2, GreedyByteValue::new());
    assert_eq!(run.benefit, 0);
    assert_eq!(run.throughput, 2);
    assert_eq!(run.weighted_loss(), 0.0, "nothing of value was lost");
}

#[test]
fn arrivals_long_after_silence() {
    let mut b = InputStream::builder();
    b.frame(0, [SliceSpec::unit()]);
    b.frame(10_000, [SliceSpec::unit()]);
    let stream = b.build();
    let report = simulate(&stream, params(2, 1, 2, 1), TailDrop::new());
    validate(&report).unwrap();
    assert_eq!(report.metrics.played_bytes, 2);
}

#[test]
fn heavily_overloaded_stream_keeps_exactly_capacity() {
    // 1000 slices at once into B = 3, R = 2: exactly B + R*drain
    // survive... i.e. 3 stored + 2 sent per step while draining: total
    // kept = 2 (step 0) + 3 stored = 5.
    let stream = InputStream::from_frames([vec![SliceSpec::unit(); 1000]]);
    let run = run_server_only(&stream, 3, 2, TailDrop::new());
    assert_eq!(run.throughput, 5);
    assert_eq!(run.dropped_slices, 995);
}

#[test]
fn alternating_feast_and_famine() {
    let stream = InputStream::from_frames(
        (0..40)
            .map(|t| {
                if t % 2 == 0 {
                    vec![SliceSpec::unit(); 6]
                } else {
                    vec![]
                }
            })
            .collect::<Vec<_>>(),
    );
    // Average rate 3; R = 3 with B = 3 loses nothing (burst 6 = B + R).
    let report = simulate(
        &stream,
        SimConfig::new(SmoothingParams::balanced_from_rate_delay(3, 1, 0)),
        TailDrop::new(),
    );
    validate(&report).unwrap();
    assert_eq!(report.metrics.played_bytes, 120);
}

#[test]
fn weights_at_u64_extremes_do_not_overflow_comparisons() {
    let stream = InputStream::from_frames([vec![
        SliceSpec::new(1, u64::MAX / 4, FrameKind::I),
        SliceSpec::new(1, 1, FrameKind::B),
        SliceSpec::new(1, u64::MAX / 4, FrameKind::I),
    ]]);
    let run = run_server_only(&stream, 1, 1, GreedyByteValue::new());
    assert_eq!(run.benefit, u64::MAX / 4 * 2);
    assert_eq!(run.dropped_slices, 1);
}
