//! End-to-end acceptance for the ISSUE 7 telemetry plane: a paced
//! loopback daemon run must report deadline-miss accounting and
//! per-stage latency histograms through BOTH surfaces — the
//! `StatsDetail` frame on the ingest socket and the Prometheus-style
//! text exposition endpoint — with identical counter values.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rts_smoothd::{
    encode_frame, serve_tcp, AdmitRequest, Daemon, DaemonConfig, Frame, FrameReader, StatsDetail,
    WirePolicy, PROTOCOL_VERSION,
};
use rts_telemetry::{parse_exposition, render_exposition, MetricsServer, SlotPacing};

fn cbr_request(rate: u64, lifetime: u64) -> AdmitRequest {
    AdmitRequest {
        rate,
        delay: 4,
        link_delay: 1,
        buffer: 0, // balanced B = R·D
        weight: 1,
        policy: WirePolicy::Tail,
        per_slot: rate as u32,
        slice_size: 1,
        lifetime,
    }
}

/// Speaks the frame protocol over `addr`: handshake, one StatsDetail
/// poll, goodbye.
fn poll_stats_detail(addr: &str) -> StatsDetail {
    let mut stream = TcpStream::connect(addr).expect("connect ingest");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = FrameReader::new();
    let recv = |stream: &mut TcpStream, reader: &mut FrameReader| -> Frame {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(frame) = reader.next_frame().expect("well-formed reply") {
                return frame;
            }
            let n = stream.read(&mut buf).expect("socket read");
            assert!(n > 0, "server closed mid-reply");
            reader.extend(&buf[..n]);
        }
    };
    stream
        .write_all(&encode_frame(&Frame::Hello {
            version: PROTOCOL_VERSION,
        }))
        .unwrap();
    assert!(matches!(
        recv(&mut stream, &mut reader),
        Frame::Welcome { .. }
    ));
    stream
        .write_all(&encode_frame(&Frame::StatsDetail))
        .unwrap();
    let detail = match recv(&mut stream, &mut reader) {
        Frame::StatsDetailReply(detail) => *detail,
        other => panic!("expected StatsDetailReply, got {other:?}"),
    };
    let _ = stream.write_all(&encode_frame(&Frame::Goodbye));
    detail
}

/// Scrapes the exposition endpoint and returns the parsed series.
fn scrape(addr: std::net::SocketAddr) -> Vec<(String, f64)> {
    let mut conn = TcpStream::connect(addr).expect("connect metrics");
    conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    let body = text.split("\r\n\r\n").nth(1).expect("http body");
    parse_exposition(body).expect("exposition parses")
}

fn series(parsed: &[(String, f64)], name: &str) -> f64 {
    parsed
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("missing series {name}"))
        .1
}

#[test]
fn stats_frame_and_exposition_report_identical_counters() {
    // A deadline-paced daemon: 1 ms slots, long enough lifetimes that
    // every stage histogram sees real traffic.
    let cfg = DaemonConfig {
        shards: 2,
        shard_link_rate: 1 << 10,
        overbook: (1, 1),
        queue_capacity: 256,
        pacing: SlotPacing::Deadline(Duration::from_millis(1)),
        record_events: false,
        rebalance: Default::default(),
    };
    let mut daemon = Daemon::start(cfg);
    let registry = daemon.registry();
    let render = Arc::new(move || render_exposition(&registry.snapshot()));
    let mut metrics = MetricsServer::serve("127.0.0.1:0", render).expect("bind metrics");
    let metrics_addr = metrics.local_addr();

    for _ in 0..6 {
        daemon.admit(&cbr_request(4, 20)).expect("fits the link");
    }
    // One reject for the per-reason ledger (zero rate is infeasible).
    assert!(daemon.admit(&cbr_request(0, 1)).is_err());
    assert!(
        daemon.wait_idle(Duration::from_secs(30)),
        "finite sessions must retire"
    );
    daemon.poll();

    let shared = Arc::new(Mutex::new(daemon));
    let ingest = serve_tcp(Arc::clone(&shared), "127.0.0.1:0").expect("bind ingest");
    let ingest_addr = ingest.local_addr().unwrap().to_string();

    // Both surfaces, scraped while the daemon is idle (no slot work in
    // flight), must agree exactly. The StatsDetail dispatch polls the
    // retirement queue first, so take the frame before the scrape.
    let detail = poll_stats_detail(&ingest_addr);
    let parsed = scrape(metrics_addr);

    // Deadline pacing was live: slots advanced under the 1 ms clock and
    // the lateness/stage instruments populated.
    assert_eq!(detail.shards.len(), 2);
    let total_slots: u64 = detail.shards.iter().map(|s| s.slots).sum();
    assert!(total_slots > 0, "paced shards stepped");
    assert_eq!(detail.retired, 6);
    assert_eq!(detail.rejects.iter().sum::<u64>(), 1);
    assert!(
        detail.stages[2].count > 0,
        "process-stage digest saw the paced slots"
    );
    assert!(
        detail.stages[0].count >= 2,
        "ingest-decode digest timed the Hello and the poll itself"
    );

    // Counter-for-counter agreement between the two surfaces.
    assert_eq!(series(&parsed, "smoothd_retired_total"), detail.retired as f64);
    let expo_rejects: f64 = parsed
        .iter()
        .filter(|(n, _)| n.starts_with("smoothd_rejects_total"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(expo_rejects, detail.rejects.iter().sum::<u64>() as f64);
    for row in &detail.shards {
        let label = |name: &str| format!("{name}{{shard=\"{}\"}}", row.shard);
        assert_eq!(series(&parsed, &label("smoothd_slots_total")), row.slots as f64);
        assert_eq!(
            series(&parsed, &label("smoothd_played_slices_total")),
            row.played as f64
        );
        assert_eq!(
            series(&parsed, &label("smoothd_sent_bytes_total")),
            row.sent_bytes as f64
        );
        assert_eq!(
            series(&parsed, &label("smoothd_deadline_miss_total")),
            row.deadline_misses as f64
        );
        assert_eq!(
            series(&parsed, &label("smoothd_slot_overrun_total")),
            row.slot_overruns as f64
        );
        assert_eq!(
            series(&parsed, &label("smoothd_sessions")),
            row.sessions as f64
        );
    }
    // Stage histograms surface on both sides with matching counts.
    // ingest-decode keeps recording between the frame poll and the
    // scrape (the poll's own Goodbye gets timed), so it only gets a
    // monotonicity bound; the slot-loop stages are quiescent and exact.
    let stage_names = ["ingest-decode", "admit", "process", "retire"];
    for (hist, stage) in detail.stages.iter().zip(stage_names) {
        let expo = series(&parsed, &format!("smoothd_stage_ns_count{{stage=\"{stage}\"}}"));
        if stage == "ingest-decode" {
            assert!(expo >= hist.count as f64, "stage {stage} went backwards");
        } else {
            assert_eq!(expo, hist.count as f64, "stage {stage}");
        }
    }
    assert_eq!(
        series(&parsed, "smoothd_lateness_ns_count"),
        detail.lateness.count as f64
    );
    // Every session played its full CBR offer: 6 sessions x 4/slot x 20.
    let total_played: u64 = detail.shards.iter().map(|s| s.played).sum();
    assert_eq!(total_played, 6 * 4 * 20);

    ingest.stop();
    metrics.stop();
    let daemon = Arc::try_unwrap(shared)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_else(|_| panic!("ingest threads still hold the daemon"));
    let report = daemon.shutdown(true);
    assert!(report.totals.conserved(), "ledger: {:?}", report.totals);
}
