//! Integration tests for the smoothd serving layer: the daemon
//! end-to-end, the TCP ingest path speaking real frames over a
//! loopback socket, backpressure shedding, trace replay, and the
//! session-churn conservation guarantees of ISSUE 6.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rts_obs::RejectReason;
use rts_smoothd::{
    decode_frame, encode_frame, read_snapshot, replay_sessions, serve_tcp, AdmitRequest,
    ArrivalSource, Daemon, DaemonConfig, Frame, FrameReader, Shard, SlotPacing, SnapshotWriter,
    WirePolicy, MAX_SNAPSHOT_CHUNK, PROTOCOL_VERSION, SNAPSHOT_HEADER,
};

fn cbr_request(rate: u64, lifetime: u64) -> AdmitRequest {
    AdmitRequest {
        rate,
        delay: 4,
        link_delay: 1,
        buffer: 0, // balanced B = R·D
        weight: 1,
        policy: WirePolicy::Tail,
        per_slot: rate as u32,
        slice_size: rate as u32,
        lifetime,
    }
}

fn external_request(rate: u64) -> AdmitRequest {
    AdmitRequest {
        per_slot: 0, // externally fed
        slice_size: 0,
        lifetime: 0,
        ..cbr_request(rate, 0)
    }
}

#[test]
fn daemon_completes_cbr_sessions_and_conserves_every_byte() {
    let mut daemon = Daemon::start(DaemonConfig {
        shards: 2,
        shard_link_rate: 1 << 12,
        queue_capacity: 256,
        record_events: false,
        ..DaemonConfig::default()
    });
    for _ in 0..64 {
        daemon.admit(&cbr_request(4, 16)).expect("fits the link");
    }
    assert!(
        daemon.wait_idle(Duration::from_secs(30)),
        "finite sessions must all retire"
    );
    let report = daemon.shutdown(true);
    assert!(report.totals.conserved(), "ledger: {:?}", report.totals);
    assert_eq!(report.totals.offered_bytes, 64 * 4 * 16);
    assert_eq!(report.totals.played_bytes, report.totals.offered_bytes);
    assert_eq!(report.retired_sessions, 64);
    for shard in &report.shards {
        assert!(
            shard.max_slot_sent <= shard.link_rate,
            "shard {} oversubscribed its link: {} > {}",
            shard.id,
            shard.max_slot_sent,
            shard.link_rate
        );
    }
}

/// A tiny blocking frame client for the loopback tests.
struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("loopback connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            stream,
            reader: FrameReader::new(),
        }
    }

    fn send(&mut self, frame: &Frame) {
        self.stream.write_all(&encode_frame(frame)).expect("send");
    }

    fn recv(&mut self) -> Frame {
        let mut buf = [0u8; 1024];
        loop {
            if let Some(frame) = self.reader.next_frame().expect("well-formed reply") {
                return frame;
            }
            let n = self.stream.read(&mut buf).expect("read reply");
            assert!(n > 0, "server closed before replying");
            self.reader.extend(&buf[..n]);
        }
    }

    fn hello(&mut self) {
        self.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
        });
        match self.recv() {
            Frame::Welcome { version } => assert_eq!(version, PROTOCOL_VERSION),
            other => panic!("expected Welcome, got {other:?}"),
        }
    }
}

#[test]
fn tcp_ingest_round_trips_a_framed_session() {
    let daemon = Daemon::start(DaemonConfig {
        shards: 1,
        shard_link_rate: 1 << 10,
        queue_capacity: 256,
        record_events: false,
        ..DaemonConfig::default()
    });
    let shared = Arc::new(Mutex::new(daemon));
    let server = serve_tcp(Arc::clone(&shared), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("tcp listener has an address");

    let mut client = Client::connect(addr);
    client.hello();

    client.send(&Frame::Admit(external_request(8)));
    let session = match client.recv() {
        Frame::Admitted { session, .. } => session,
        other => panic!("expected Admitted, got {other:?}"),
    };

    // Three slices of 8 bytes: within B = R·D = 32, so nothing drops.
    client.send(&Frame::Data {
        session,
        slices: vec![(8, 1), (8, 1), (8, 1)],
    });
    client.send(&Frame::Drain { session });

    // Poll Stats until the session retires (the drain empties the
    // pipeline in a handful of slots).
    let deadline = Instant::now() + Duration::from_secs(20);
    let retired = loop {
        client.send(&Frame::Stats);
        match client.recv() {
            Frame::StatsReply(s) if s.retired >= 1 => break s.retired,
            Frame::StatsReply(_) => {
                assert!(Instant::now() < deadline, "session never retired");
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected StatsReply, got {other:?}"),
        }
    };
    assert_eq!(retired, 1);

    client.send(&Frame::Goodbye);
    match client.recv() {
        Frame::Bye => {}
        other => panic!("expected Bye, got {other:?}"),
    }

    server.stop();
    let daemon = Arc::try_unwrap(shared)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_else(|_| panic!("ingest threads still hold the daemon"));
    let report = daemon.shutdown(true);
    assert!(report.totals.conserved());
    assert_eq!(report.totals.offered_bytes, 24);
    assert_eq!(report.totals.played_bytes, 24, "all fed bytes must play");
}

#[test]
fn tcp_ingest_rejects_admissions_beyond_capacity_with_a_typed_reason() {
    let daemon = Daemon::start(DaemonConfig {
        shards: 1,
        shard_link_rate: 8,
        queue_capacity: 64,
        record_events: false,
        ..DaemonConfig::default()
    });
    let shared = Arc::new(Mutex::new(daemon));
    let server = serve_tcp(Arc::clone(&shared), "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(server.local_addr().unwrap());
    client.hello();

    client.send(&Frame::Admit(external_request(8)));
    assert!(matches!(client.recv(), Frame::Admitted { .. }));
    client.send(&Frame::Admit(external_request(8)));
    match client.recv() {
        Frame::Rejected { reason, .. } => assert_eq!(reason, RejectReason::Capacity),
        other => panic!("expected Rejected, got {other:?}"),
    }
    // Unknown session ids are refused, not ignored.
    client.send(&Frame::Data {
        session: 999,
        slices: vec![(1, 1)],
    });
    match client.recv() {
        Frame::Rejected { session, reason } => {
            assert_eq!(session, 999);
            assert_eq!(reason, RejectReason::UnknownSession);
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    server.stop();
    let daemon = Arc::try_unwrap(shared)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_else(|_| panic!("ingest threads still hold the daemon"));
    daemon.shutdown(true);
}

#[test]
fn tcp_ingest_answers_protocol_garbage_with_a_protocol_reject() {
    let daemon = Daemon::start(DaemonConfig {
        shards: 1,
        shard_link_rate: 64,
        queue_capacity: 16,
        record_events: false,
        ..DaemonConfig::default()
    });
    let shared = Arc::new(Mutex::new(daemon));
    let server = serve_tcp(Arc::clone(&shared), "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(server.local_addr().unwrap());
    client.hello();

    // A declared length beyond MAX_FRAME is a protocol violation; the
    // server must answer with a typed reject and hang up, not panic.
    // The kind byte rides along because the oversize error names the
    // offending frame kind, so the decoder waits for it.
    let mut garbage = (1_000_000u32).to_le_bytes().to_vec();
    garbage.push(0x02);
    client.stream.write_all(&garbage).unwrap();
    match client.recv() {
        Frame::Rejected { reason, .. } => assert_eq!(reason, RejectReason::Protocol),
        other => panic!("expected Rejected, got {other:?}"),
    }
    let mut rest = Vec::new();
    let closed = client.stream.read_to_end(&mut rest);
    assert!(closed.is_ok() && rest.is_empty(), "server must close");

    server.stop();
    let daemon = Arc::try_unwrap(shared)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_else(|_| panic!("ingest threads still hold the daemon"));
    daemon.shutdown(false);
}

#[test]
fn full_command_queues_shed_with_typed_backpressure() {
    // One slow shard: a long slot interval keeps the worker asleep
    // while we flood its bounded queue.
    let mut daemon = Daemon::start(DaemonConfig {
        shards: 1,
        shard_link_rate: 1 << 10,
        queue_capacity: 2,
        pacing: SlotPacing::Sleep(Duration::from_millis(50)),
        record_events: true,
        ..DaemonConfig::default()
    });
    let (id, _) = daemon.admit(&external_request(8)).expect("fits");
    let mut backpressured = 0;
    for _ in 0..2_000 {
        match daemon.inject(id, vec![(1, 1)]) {
            Ok(()) => {}
            Err(RejectReason::Backpressure) => backpressured += 1,
            Err(other) => panic!("unexpected reject {other:?}"),
        }
    }
    assert!(
        backpressured > 0,
        "a 2-deep queue against a sleeping worker must shed"
    );
    let mut events = Vec::new();
    daemon.take_events(&mut events);
    assert!(
        events.iter().any(|e| matches!(
            e,
            rts_obs::Event::IngestRejected {
                reason: RejectReason::Backpressure,
                ..
            }
        )),
        "backpressure must surface as a typed rts-obs event"
    );
    let report = daemon.shutdown(false);
    // Shed commands never entered a session, so the ledger still
    // balances over what was actually enqueued.
    assert!(report.totals.conserved(), "ledger: {:?}", report.totals);
}

#[test]
fn churn_sequences_conserve_bytes_and_never_oversubscribe_the_link() {
    // Deterministic admit/feed/drain/evict interleavings on one shard,
    // the exact loop the daemon workers run (satellite: tests/smoothd.rs
    // churn conservation).
    let link_rate = 32;
    let mut shard = Shard::new(0, link_rate, (1, 1));
    let mut live: Vec<u64> = Vec::new();
    for round in 0..6u64 {
        for k in 0..4u64 {
            let id = round * 10 + k;
            if shard.admit(id, &cbr_request(4, 12)).is_ok() {
                live.push(id);
            }
        }
        for _ in 0..5 {
            shard.process_slot();
            assert!(
                shard.stats().max_slot_sent <= link_rate,
                "slot {} oversubscribed: {} > {}",
                shard.now(),
                shard.stats().max_slot_sent,
                link_rate
            );
            let totals = shard.totals();
            assert_eq!(
                totals.offered_bytes,
                totals.resolved_bytes() + shard.pool_bytes(),
                "mid-run leak at slot {}",
                shard.now()
            );
        }
        // Churn: drain one, evict one (when present).
        if let Some(&victim) = live.first() {
            let _ = shard.drain(victim);
            live.remove(0);
        }
        if let Some(&victim) = live.first() {
            let _ = shard.evict(victim);
            live.remove(0);
        }
    }
    shard.drain_all();
    assert!(shard.run_until_drained(10_000), "drain must terminate");
    let totals = shard.totals();
    assert!(totals.conserved(), "final ledger: {totals:?}");
    assert!(totals.offered_bytes > 0, "the scenario must move bytes");
    let mut retirements = Vec::new();
    shard.take_retirements(&mut retirements);
    for r in &retirements {
        assert!(
            r.counters.conserved(),
            "session {} ledger: {:?}",
            r.session,
            r.counters
        );
    }
}

#[test]
fn recorded_traces_replay_into_the_daemon() {
    let trace = "\
{\"ev\":\"slice_admitted\",\"t\":3,\"session\":1,\"id\":0,\"bytes\":4,\"weight\":1}\n\
{\"ev\":\"slice_admitted\",\"t\":4,\"session\":1,\"id\":1,\"bytes\":4,\"weight\":1}\n\
{\"ev\":\"slice_admitted\",\"t\":3,\"session\":2,\"id\":0,\"bytes\":6,\"weight\":2}\n";
    let sessions = replay_sessions(trace.as_bytes()).expect("valid trace");
    assert_eq!(sessions.len(), 2);
    let total: u64 = sessions.iter().map(|s| s.total_bytes).sum();

    let mut daemon = Daemon::start(DaemonConfig {
        shards: 1,
        shard_link_rate: 64,
        queue_capacity: 16,
        record_events: false,
        ..DaemonConfig::default()
    });
    for s in &sessions {
        daemon
            .admit_with_source(
                &external_request(8),
                ArrivalSource::scheduled(s.slices.clone()),
            )
            .expect("trace sessions fit");
    }
    assert!(daemon.wait_idle(Duration::from_secs(20)));
    let report = daemon.shutdown(true);
    assert!(report.totals.conserved());
    assert_eq!(report.totals.offered_bytes, total);
    assert_eq!(report.totals.played_bytes, total);
}

#[test]
fn frame_codec_agrees_with_itself_over_a_split_stream() {
    // Chunked reassembly sanity at the integration level: many frames,
    // 1-byte feeds.
    let frames = vec![
        Frame::Hello {
            version: PROTOCOL_VERSION,
        },
        Frame::Admit(cbr_request(7, 3)),
        Frame::Data {
            session: 42,
            slices: vec![(1, 1), (2, 2)],
        },
        Frame::Stats,
        Frame::Goodbye,
    ];
    let mut wire = Vec::new();
    for f in &frames {
        wire.extend_from_slice(&encode_frame(f));
    }
    let mut reader = FrameReader::new();
    let mut decoded = Vec::new();
    for byte in wire {
        reader.extend(&[byte]);
        while let Some(f) = reader.next_frame().expect("valid stream") {
            decoded.push(f);
        }
    }
    assert_eq!(decoded, frames);
    // And the one-shot decoder rejects a truncated tail with a typed,
    // non-panicking error.
    let bytes = encode_frame(&frames[1]);
    let err = decode_frame(&bytes[..bytes.len() - 1]).unwrap_err();
    assert!(err.is_incomplete());
}

/// Drives one skewed TCP run: every data-bearing session is herded
/// onto a single shard, fed a fixed byte budget, then drained after
/// the rebalancer has (or has not) had its chance. Returns the exit
/// report plus the migration count the wire reported.
fn skewed_tcp_run(rebalance: bool) -> (rts_smoothd::DaemonReport, u64) {
    const FED: usize = 10;
    const SLICES: u64 = 3;
    const RATE: u64 = 4;
    let mut cfg = DaemonConfig {
        shards: 2,
        shard_link_rate: 1 << 10,
        queue_capacity: 256,
        record_events: false,
        ..DaemonConfig::default()
    };
    cfg.rebalance.enabled = rebalance;
    let daemon = Daemon::start(cfg);
    let shared = Arc::new(Mutex::new(daemon));
    let server = serve_tcp(Arc::clone(&shared), "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(server.local_addr().unwrap());
    client.hello();

    // Build the skew with the pinning hook (the cost router would
    // spread wire admissions evenly, which is the point of it); the
    // run itself — data, stats, drains — is all wire traffic.
    let target = 0u32;
    let fed: Vec<u64> = {
        let mut d = shared.lock().expect("daemon mutex");
        (0..FED)
            .map(|_| d.admit_pinned(&external_request(RATE), target).expect("fits"))
            .collect()
    };
    let admitted_total = FED as u64;

    // A fixed byte budget per fed session, inside B = R*D.
    for &session in &fed {
        client.send(&Frame::Data {
            session,
            slices: vec![(RATE, 1); SLICES as usize],
        });
    }

    // StatsDetail polls run the daemon's control-plane poll (and so
    // the interval-gated rebalancer) server-side.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut migrations;
    let mut polls = 0;
    loop {
        client.send(&Frame::StatsDetail);
        let detail = match client.recv() {
            Frame::StatsDetailReply(d) => d,
            other => panic!("expected StatsDetailReply, got {other:?}"),
        };
        migrations = detail.migrations;
        polls += 1;
        if rebalance {
            if migrations >= 1 {
                // The skew must be read as such: donor is the loaded
                // shard, receiver the idle one.
                assert_eq!(detail.last_migration_from, target, "{detail:?}");
                break;
            }
        } else if polls >= 8 {
            break;
        }
        assert!(Instant::now() < deadline, "rebalancer never migrated");
        std::thread::sleep(Duration::from_millis(25));
    }

    // Drain everything; re-send drains each round because a drain can
    // race an in-flight export (the command lands on a shard that no
    // longer owns the session and is dropped, by design).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        for &session in &fed {
            client.send(&Frame::Drain { session });
        }
        client.send(&Frame::Stats);
        let retired = loop {
            match client.recv() {
                // Drains of already-retired sessions reject typed.
                Frame::Rejected { reason, .. } => {
                    assert_eq!(reason, RejectReason::UnknownSession)
                }
                Frame::StatsReply(s) => break s.retired,
                other => panic!("expected StatsReply, got {other:?}"),
            }
        };
        if retired == admitted_total {
            break;
        }
        assert!(Instant::now() < deadline, "sessions never retired");
        std::thread::sleep(Duration::from_millis(20));
    }

    client.send(&Frame::Goodbye);
    assert!(matches!(client.recv(), Frame::Bye));
    server.stop();
    let daemon = Arc::try_unwrap(shared)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_else(|_| panic!("ingest threads still hold the daemon"));
    let report = daemon.shutdown(true);
    assert!(report.totals.conserved(), "ledger: {:?}", report.totals);
    assert_eq!(report.totals.offered_bytes, FED as u64 * SLICES * RATE);
    assert_eq!(report.totals.played_bytes, report.totals.offered_bytes);
    (report, migrations)
}

// ------------------------------------------------------------------
// Snapshot/restore: crash consistency and export/import edge cases.
// ------------------------------------------------------------------

/// Builds a deterministic shard population for the snapshot tests:
/// finite CBR sessions of varying rate and lifetime plus externally-fed
/// sessions with oversized slices (so the snapshot catches a partially
/// transmitted FIFO head), warmed up a few slots with pre-snapshot
/// retirements harvested away.
fn snapshot_population(sessions: u64, warmup: u64) -> Shard {
    let mut shard = Shard::new(0, 1 << 10, (1, 1));
    for id in 1..=sessions {
        if id % 4 == 0 {
            // Externally fed; slices wider than the rate straddle slots.
            shard
                .admit(id, &external_request(2 + id % 5))
                .expect("fits the link");
            shard
                .inject(id, &[(7, 1), (5, 2), (3, 1)])
                .expect("fresh session takes data");
        } else {
            shard
                .admit(id, &cbr_request(2 + id % 5, 8 + id % 9))
                .expect("fits the link");
        }
    }
    for _ in 0..warmup {
        shard.process_slot();
    }
    let mut pre = Vec::new();
    shard.take_retirements(&mut pre);
    shard
}

/// Serializes every live session of a shard into snapshot bytes.
fn snapshot_of(shard: &Shard) -> Vec<u8> {
    let mut writer = SnapshotWriter::new();
    for s in shard.iter_sessions() {
        writer.add(s);
    }
    writer.finish()
}

/// The byte offsets where a killed snapshot writer plausibly stops:
/// after the header, after every per-session record, and at every
/// wire-chunk boundary (the snapshot travels in `MAX_SNAPSHOT_CHUNK`
/// frames, so a connection cut mid-stream lands exactly there).
fn kill_offsets(bytes: &[u8]) -> Vec<usize> {
    let mut offsets = vec![0, SNAPSHOT_HEADER];
    let mut at = SNAPSHOT_HEADER;
    while at + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 4 + len + 4; // length prefix + payload + record CRC
        offsets.push(at.min(bytes.len()));
    }
    let mut chunk = MAX_SNAPSHOT_CHUNK;
    while chunk < bytes.len() {
        offsets.push(chunk);
        chunk += MAX_SNAPSHOT_CHUNK;
    }
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

/// The crash-consistency rig of ISSUE 10: kill the snapshot writer at
/// every record and chunk boundary (plus seeded intra-record offsets),
/// restart from the truncated file, and prove detect-or-restore — a
/// torn snapshot is refused outright (and the refusing daemon admits
/// nothing, so a retry is clean), while the complete file restores a
/// shard whose every retirement matches the uninterrupted run exactly.
#[test]
fn killing_the_snapshot_writer_at_any_offset_detects_or_restores_exactly() {
    let mut original = snapshot_population(40, 5);
    let bytes = snapshot_of(&original);
    assert!(
        bytes.len() > 2 * MAX_SNAPSHOT_CHUNK,
        "population must span several wire chunks, got {} bytes",
        bytes.len()
    );

    // Every boundary cut plus seeded offsets inside records.
    let mut cuts = kill_offsets(&bytes);
    let mut rng = rts_stream::rng::SplitMix64::new(0x7ea_5eed);
    for _ in 0..64 {
        cuts.push(rng.range_u64(1, bytes.len() as u64 - 1) as usize);
    }
    cuts.sort_unstable();
    cuts.dedup();

    // One daemon serves every torn-restore probe: a refused restore
    // must leave it completely empty, so reuse proves all-or-nothing
    // at each step.
    let mut daemon = Daemon::start(DaemonConfig {
        shards: 2,
        shard_link_rate: 1 << 10,
        queue_capacity: 256,
        record_events: false,
        ..DaemonConfig::default()
    });
    for &cut in &cuts {
        assert!(cut <= bytes.len());
        if cut == bytes.len() {
            continue; // the uninterrupted file; restored below
        }
        let torn = &bytes[..cut];
        let parse = rts_smoothd::read_snapshot(torn);
        assert!(
            parse.is_err(),
            "truncation at byte {cut} of {} went undetected",
            bytes.len()
        );
        let restore = daemon.restore(torn);
        assert!(restore.is_err(), "daemon restored a torn file cut at {cut}");
        assert_eq!(
            daemon.live_sessions(),
            0,
            "refused restore (cut {cut}) must admit nothing"
        );
    }

    // The complete file restores into the same daemon the torn probes
    // failed against, and drains with a conserved ledger.
    let expected = read_snapshot(&bytes).expect("uncut snapshot decodes").len() as u64;
    assert_eq!(daemon.restore(&bytes).unwrap(), expected);
    // A draining shutdown settles everything, including the restored
    // externally-fed sessions (which never retire on their own).
    let report = daemon.shutdown(true);
    assert_eq!(report.retired_sessions, expected);
    assert!(report.totals.conserved(), "ledger: {:?}", report.totals);

    // Shard-level oracle: a restored shard's retirements match the
    // uninterrupted original's, cause for cause and byte for byte.
    let mut restored = Shard::new(0, 1 << 10, (1, 1));
    for s in read_snapshot(&bytes).unwrap() {
        restored.import(s).expect("snapshot population fits");
    }
    original.drain_all();
    restored.drain_all();
    assert!(original.run_until_drained(100_000));
    assert!(restored.run_until_drained(100_000));
    let (mut orig_ret, mut rest_ret) = (Vec::new(), Vec::new());
    original.take_retirements(&mut orig_ret);
    restored.take_retirements(&mut rest_ret);
    assert_eq!(orig_ret.len(), rest_ret.len());
    for r in &rest_ret {
        let m = orig_ret
            .iter()
            .find(|m| m.session == r.session)
            .unwrap_or_else(|| panic!("session {} retired only after restore", r.session));
        assert_eq!(r.cause, m.cause, "session {}", r.session);
        assert_eq!(r.counters, m.counters, "session {}", r.session);
        assert!(r.counters.conserved(), "session {}: {:?}", r.session, r.counters);
    }
}

#[test]
fn an_empty_shard_exports_nothing_and_snapshots_to_a_bare_header() {
    let mut shard = Shard::new(0, 64, (1, 1));
    assert!(shard.export_any().is_none(), "nothing to export");
    let bytes = snapshot_of(&shard);
    assert_eq!(bytes.len(), SNAPSHOT_HEADER, "header-only snapshot");
    assert_eq!(read_snapshot(&bytes).unwrap().len(), 0);
    // And an empty snapshot restores into a daemon as a clean no-op.
    let mut daemon = Daemon::start(DaemonConfig {
        shards: 1,
        shard_link_rate: 64,
        queue_capacity: 16,
        record_events: false,
        ..DaemonConfig::default()
    });
    assert_eq!(daemon.restore(&bytes).unwrap(), 0);
    assert_eq!(daemon.live_sessions(), 0);
    daemon.shutdown(false);
}

#[test]
fn a_partially_drained_head_survives_export_import_mid_frame() {
    // An 11-byte slice against a rate-4 reservation takes three slots;
    // one slot in, the FIFO head is mid-frame (4 of 11 bytes sent).
    let build = || {
        let mut shard = Shard::new(0, 64, (1, 1));
        shard.admit(1, &external_request(4)).unwrap();
        shard.inject(1, &[(11, 1), (6, 1)]).unwrap();
        shard.process_slot();
        shard
    };
    let mut donor = build();
    let mut twin = build();

    let session = donor.export(1).expect("live session exports");
    assert!(
        session.in_flight_bytes() > 0,
        "the scenario must catch bytes on the wire"
    );
    let mut receiver = Shard::new(1, 64, (1, 1));
    receiver.import(session).expect("receiver has room");

    // The migrated session finishes exactly like the one that stayed.
    for shard in [&mut receiver, &mut twin] {
        shard.drain_all();
        assert!(shard.run_until_drained(10_000));
    }
    let (mut moved, mut stayed) = (Vec::new(), Vec::new());
    receiver.take_retirements(&mut moved);
    twin.take_retirements(&mut stayed);
    assert_eq!(moved.len(), 1);
    assert_eq!(moved[0].cause, stayed[0].cause);
    assert_eq!(moved[0].counters, stayed[0].counters);
    assert!(moved[0].counters.conserved(), "{:?}", moved[0].counters);
    assert_eq!(moved[0].counters.offered_bytes, 17);
}

#[test]
fn import_into_a_full_shard_rejects_without_losing_the_session() {
    let mut donor = Shard::new(0, 8, (1, 1));
    donor.admit(1, &external_request(8)).unwrap();
    donor.inject(1, &[(8, 1), (8, 1)]).unwrap();

    // The receiver's whole link is booked: the import must bounce.
    let mut full = Shard::new(1, 8, (1, 1));
    full.admit(2, &external_request(8)).unwrap();

    let session = donor.export(1).expect("live session exports");
    let bounced = match full.import(session) {
        Ok(()) => panic!("full shard accepted an import beyond its bookable rate"),
        Err(session) => session, // typed reject hands the session back
    };
    assert_eq!(bounced.id(), 1);

    // No session loss: the donor just released this reservation, so it
    // takes its own session back and every byte still drains.
    donor.import(bounced).expect("donor re-imports its own session");
    // Let the injected slices enter the smoother before draining —
    // arrivals are offered at the next slot boundary.
    donor.process_slot();
    donor.drain_all();
    assert!(donor.run_until_drained(10_000));
    let mut retirements = Vec::new();
    donor.take_retirements(&mut retirements);
    assert_eq!(retirements.len(), 1);
    assert!(retirements[0].counters.conserved());
    assert_eq!(retirements[0].counters.offered_bytes, 16);
    full.drain_all();
    assert!(full.run_until_drained(10_000));
}

#[test]
fn rebalancing_a_skewed_tcp_run_leaves_the_ledger_identical() {
    let (balanced, migrations) = skewed_tcp_run(true);
    assert!(migrations >= 1, "skewed run never migrated");
    let (unbalanced, none) = skewed_tcp_run(false);
    assert_eq!(none, 0, "rebalance off must not migrate");
    // Migration is invisible to the byte ledger: both runs end with
    // exactly the same totals.
    assert_eq!(balanced.totals, unbalanced.totals);
    assert_eq!(balanced.retired_sessions, unbalanced.retired_sessions);
}
