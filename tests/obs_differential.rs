//! Differential tests of the observability layer: the streaming
//! `rts-obs` [`Collector`] must agree with the batch
//! `Metrics::from_record` path on a long MPEG-like run — exactly on
//! counts, bytes, and maxima, and within one log-bucket on quantiles —
//! and a JSONL trace replayed through a fresh collector must reproduce
//! the live one.

use rts_core::policy::GreedyByteValue;
use rts_core::tradeoff::SmoothingParams;
use rts_obs::{Collector, DropSite, JsonlWriter, LogHistogram, Tee};
use rts_sim::{simulate_probed, SimConfig};
use rts_stream::gen::{MpegConfig, MpegSource};
use rts_stream::slicing::Slicing;
use rts_stream::weight::WeightAssignment;
use rts_stream::InputStream;

fn mpeg_10k() -> InputStream {
    MpegSource::new(MpegConfig::cnn_like(), 42)
        .frames(10_000)
        .materialize(Slicing::WholeFrame, WeightAssignment::MPEG_12_8_1)
}

/// Nearest-rank quantile of a sorted sample (the contract
/// `LogHistogram::quantile` approximates to bucket resolution).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

#[test]
fn streaming_collector_agrees_with_batch_metrics_on_10k_frames() {
    let stream = mpeg_10k();
    // Slightly under-provisioned so the drop paths see traffic too.
    let rate = stream.stats().rate_at(0.95).max(1);
    let params = SmoothingParams::balanced_from_rate_delay(rate, 6, 2);

    let mut c = Collector::new();
    let report = simulate_probed(&stream, SimConfig::new(params), GreedyByteValue::new(), &mut c);
    let m = &report.metrics;
    m.check_conservation().expect("batch metrics conserve bytes");

    // Counts and bytes agree exactly.
    assert_eq!(c.admitted_slices.get(), stream.slice_count() as u64);
    assert_eq!(c.admitted_bytes.get(), m.offered_bytes);
    assert_eq!(c.admitted_weight.get(), m.offered_weight);
    assert_eq!(c.played_slices.get(), m.played_slices);
    assert_eq!(c.played_bytes.get(), m.played_bytes);
    assert_eq!(c.played_weight.get(), m.benefit);
    let server = c.drops_at(DropSite::Server);
    assert_eq!(server.slices, m.server_dropped_slices);
    assert_eq!(server.bytes, m.server_dropped_bytes);
    let client = c.drops_at(DropSite::Client);
    assert_eq!(client.slices, m.client_dropped_slices);
    assert_eq!(client.bytes, m.client_dropped_bytes);
    assert!(
        m.server_dropped_slices > 0,
        "the run must exercise the drop path to be a meaningful differential"
    );

    // Maxima and slot counts agree exactly.
    assert_eq!(c.server_occupancy_max.max(), m.server_occupancy_max);
    assert_eq!(c.client_occupancy_max.max(), m.client_occupancy_max);
    assert_eq!(c.link_rate_max.max(), m.link_rate_max);
    assert_eq!(c.slots.get(), report.record.steps().len() as u64);

    // Balanced configuration: every played slice sojourns exactly P + D
    // (Definition 2.5), so the streaming histogram collapses to a point.
    let latency = params.playout_latency();
    assert_eq!(c.sojourn.count(), m.played_slices);
    assert_eq!(c.sojourn.min(), latency);
    assert_eq!(c.sojourn.max(), latency);

    // Histogram quantiles within one log-bucket of the exact
    // nearest-rank values computed from the full record.
    let mut server_occ: Vec<u64> = report
        .record
        .steps()
        .iter()
        .map(|s| s.server_occupancy)
        .collect();
    server_occ.sort_unstable();
    let mut link: Vec<u64> = report.record.steps().iter().map(|s| s.sent_bytes).collect();
    link.sort_unstable();
    for (name, hist, exact) in [
        ("server_occupancy", &c.server_occupancy, &server_occ),
        ("link_utilization", &c.link_utilization, &link),
    ] {
        assert_eq!(hist.count(), exact.len() as u64, "{name} sample count");
        for q in [0.5, 0.9, 0.99, 1.0] {
            let approx = hist.quantile(q);
            let want = exact_quantile(exact, q);
            assert!(
                LogHistogram::bucket_of(approx).abs_diff(LogHistogram::bucket_of(want)) <= 1,
                "{name} q={q}: streaming {approx} vs exact {want} differ by more than one bucket"
            );
        }
    }
}

#[test]
fn jsonl_trace_replay_reproduces_the_live_collector() {
    let stream = mpeg_10k();
    let rate = stream.stats().rate_at(0.95).max(1);
    let params = SmoothingParams::balanced_from_rate_delay(rate, 6, 2);

    // One run feeding both a live collector and a JSONL trace.
    let mut tee = Tee(Collector::new(), JsonlWriter::new(Vec::new()));
    simulate_probed(&stream, SimConfig::new(params), GreedyByteValue::new(), &mut tee);
    let Tee(live, writer) = tee;
    let events = writer.lines();
    let buf = writer.finish().expect("in-memory sink cannot fail");

    let mut replayed = Collector::new();
    let n = rts_obs::replay(&buf[..], &mut replayed).expect("trace replays cleanly");
    assert_eq!(n, events);
    assert_eq!(live.summary(), replayed.summary());
    assert_eq!(live.admitted_bytes.get(), replayed.admitted_bytes.get());
    assert_eq!(live.dropped_bytes(), replayed.dropped_bytes());
}
