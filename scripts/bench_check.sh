#!/usr/bin/env bash
# Benchmark regression gate: reruns the hotpath suite (full mode) and
# compares each benchmark's median against the committed baseline
# BENCH_hotpath.json with a tolerance band (default 1.6x; override with
# BENCH_TOLERANCE). Also enforces the ring-vs-map ablation floors
# (baseline >= 1.5x, live run >= 1.3x). Medians are machine-relative,
# so only large relative regressions fail.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p rts-bench --bin hotpath
./target/release/hotpath --check "${1:-BENCH_hotpath.json}"
