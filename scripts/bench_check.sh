#!/usr/bin/env bash
# Benchmark regression gate: reruns the hotpath suite (full mode) and
# compares each benchmark's median against the committed baseline
# BENCH_hotpath.json with a tolerance band (default 1.6x; override with
# BENCH_TOLERANCE). Also enforces the ring-vs-map ablation floors
# (baseline >= 1.5x, live run >= 1.3x), caps the smoothd
# telemetry-on/off overhead ratio at 1.5x, and keeps the offline fast
# paths fast: chain-vs-generic >= 5x baseline / 4x live, and
# warm-vs-cold sweeps >= 10x baseline / 8x live. It then reruns the smoothd
# capacity ramp (up to the 100k-session rung) and gates each rung's
# slices/s against the committed BENCH_capacity.json with the same
# tolerance. Medians and rates are machine-relative, so only large
# relative regressions fail.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p rts-bench --bin hotpath --bin capacity
./target/release/hotpath --check "${1:-BENCH_hotpath.json}"
./target/release/capacity --check "${2:-BENCH_capacity.json}"
