#!/usr/bin/env bash
# Benchmark regression gate: reruns the hotpath suite (full mode) and
# compares each benchmark's median against the committed baseline
# BENCH_hotpath.json with a tolerance band (default 1.6x; override with
# BENCH_TOLERANCE). Also enforces the ring-vs-map ablation floors
# (baseline >= 1.5x, live run >= 1.3x), caps the smoothd
# telemetry-on/off overhead ratio at 1.5x, and keeps the offline fast
# paths fast: chain-vs-generic >= 5x baseline / 4x live, and
# warm-vs-cold sweeps >= 10x baseline / 8x live. It then reruns the smoothd
# capacity ramp (1/2-shard and skewed rungs up to 100k sessions) and
# gates each rung's slices/s against the committed BENCH_capacity.json
# with the same tolerance — admitted-sessions/s too, on the >=10k
# rungs with a 2.5x-wider band (one-shot measurements) — plus the
# absolute floors that hold on any machine: batched admission >= 5x the
# sequential path, the ingest soak greeting every socket with zero
# process-thread growth, and — only when the machine has >= 2 cores —
# the 2-shard skewed rung at >= 1.7x the 1-shard rung. Medians and
# rates are machine-relative, so only large relative regressions fail.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p rts-bench --bin hotpath --bin capacity
./target/release/hotpath --check "${1:-BENCH_hotpath.json}"
./target/release/capacity --check "${2:-BENCH_capacity.json}"
