#!/usr/bin/env bash
# Full offline verification: release build, the whole test suite, and
# clippy with warnings denied. This is exactly what CI runs; the
# workspace has no external dependencies, so it works with no network.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets --workspace -- -D warnings

echo "verify: build, tests, and clippy all clean"
