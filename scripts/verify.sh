#!/usr/bin/env bash
# Full offline verification: release build, the whole test suite, and
# clippy with warnings denied. This is exactly what CI runs; the
# workspace has no external dependencies, so it works with no network.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets --workspace -- -D warnings

# The ring-vs-map differential test in release mode (10k-frame streams,
# all four policies, both slicing modes) and a smoke pass of the
# hotpath suite, so verification exercises the fast buffer path
# end to end.
cargo test -q --release --test buffer_diff
./target/release/hotpath --smoke --out /tmp/BENCH_hotpath_smoke.json
./target/release/hotpath --validate /tmp/BENCH_hotpath_smoke.json

# The property/fuzz catalog (rts-check): theorem-bound invariants and
# differential oracles with shrinking and CHECK_SEED replay. Run twice
# and compare byte-for-byte — the report must be a pure function of
# (cases, seed).
./target/release/smoothctl check --cases 200 --seed 1 > /tmp/rts_check_a.txt
./target/release/smoothctl check --cases 200 --seed 1 > /tmp/rts_check_b.txt
cmp /tmp/rts_check_a.txt /tmp/rts_check_b.txt

echo "verify: build, tests, clippy, buffer differential, bench smoke, and check catalog all clean"
