#!/usr/bin/env bash
# Full offline verification: release build, the whole test suite, and
# clippy with warnings denied. This is exactly what CI runs; the
# workspace has no external dependencies, so it works with no network.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets --workspace -- -D warnings

# The ring-vs-map differential test in release mode (10k-frame streams,
# all four policies, both slicing modes) and a smoke pass of the
# hotpath suite, so verification exercises the fast buffer path
# end to end.
cargo test -q --release --test buffer_diff
./target/release/hotpath --smoke --out /tmp/BENCH_hotpath_smoke.json
./target/release/hotpath --validate /tmp/BENCH_hotpath_smoke.json

echo "verify: build, tests, clippy, buffer differential, and bench smoke all clean"
